"""Project-wide call graph for the interprocedural lint rules.

The per-file rules of PRs 3–7 each grew a private notion of "delegation"
— R4 followed ``self._helper()`` chains inside one class, R6 followed
``self._impl()`` / module-level ``_impl()`` chains inside one file.
Neither could see a binding in ``kernels/spmv.py`` hand a workspace view
to a closure minted in ``tape/recorder.py``.  This module builds the
shared substrate those rules (and the new provenance rules R7/R8) run
on: every function definition in the linted tree — module-level
functions, class methods and *nested* closures — indexed by a stable
qualified name, with call edges resolved through

* bare local names (nested defs in the enclosing scope chain, then
  module-level functions, then imports),
* ``self.method()`` / ``cls.method()`` same-class dispatch,
* ``import repro.x.y as z`` / ``from repro.x import y`` aliases,
  including one level of relative imports, and
* the implicit closure edge from a function to the defs nested in it
  (a closure's body runs on behalf of whoever holds the closure, so
  facts like "consults the check hook" propagate through it).

Resolution is deliberately *syntactic and conservative*: an attribute
call on an arbitrary object (``plan.replay()``) resolves to ``None`` and
the rules treat unresolved callees as opaque.  The graph is a
whole-project index — building it for the ~90 files of ``src/repro``
costs one ``ast.parse`` per file, which the engine already pays.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.lint.astutil import dotted_name
from repro.lint.context import ModuleContext

__all__ = ["FunctionInfo", "ModuleInfo", "ProjectIndex"]

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def module_name(relpath: str | None) -> str | None:
    """Dotted module name for a repro-relative path, e.g.
    ``tape/recorder.py`` -> ``repro.tape.recorder``."""
    if relpath is None:
        return None
    parts = relpath.split("/")
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    elif parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    return ".".join(["repro", *parts]) if parts else "repro"


@dataclass
class FunctionInfo:
    """One function definition: identity, AST, and extracted call facts."""

    name: str
    qualname: str  # "Cls.method", "outer.<locals>.inner", or bare name
    path: str  # display path of the defining file
    module: str | None  # dotted module name, None outside a repro tree
    cls: str | None  # enclosing class name, if a method
    node: ast.FunctionDef | ast.AsyncFunctionDef
    ctx: ModuleContext
    parent: "FunctionInfo | None" = None  # enclosing function for closures
    children: list["FunctionInfo"] = field(default_factory=list)
    #: Call nodes in this function's own body, *excluding* the bodies of
    #: nested defs (those are their own FunctionInfos, reached through the
    #: implicit closure edge).
    calls: list[ast.Call] = field(default_factory=list)

    @property
    def is_public(self) -> bool:
        return not self.name.startswith("_")

    @property
    def label(self) -> str:
        """Human name for findings: ``Cls.method()`` / ``fn()``."""
        return f"{self.qualname}()"

    def docstring(self) -> str:
        return ast.get_docstring(self.node) or ""

    def param_names(self) -> list[str]:
        a = self.node.args
        return [p.arg for p in (*a.posonlyargs, *a.args, *a.kwonlyargs)]


@dataclass
class ModuleInfo:
    """Per-file symbol table feeding the project index."""

    ctx: ModuleContext
    module: str | None
    #: local name -> dotted import target ("repro.tape.tape.Workspace",
    #: "repro.amg.smoothers", "numpy", ...).
    imports: dict[str, str] = field(default_factory=dict)
    #: module-level functions by bare name.
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: class name -> {method name -> FunctionInfo}.
    classes: dict[str, dict[str, FunctionInfo]] = field(default_factory=dict)
    #: every def in the file, nested ones included.
    all_functions: list[FunctionInfo] = field(default_factory=list)


def _own_calls(node: ast.AST) -> list[ast.Call]:
    """Call nodes under *node* that are not inside a nested def/lambda."""
    calls: list[ast.Call] = []
    stack: list[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        n = stack.pop()
        if isinstance(n, (*_FUNC_NODES, ast.Lambda)):
            continue
        if isinstance(n, ast.Call):
            calls.append(n)
        stack.extend(ast.iter_child_nodes(n))
    return calls


def _collect_imports(tree: ast.Module, self_module: str | None) -> dict[str, str]:
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    imports[head] = head
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:  # relative: resolve against our own package
                if self_module is None:
                    continue
                pkg = self_module.split(".")
                # level 1 = current package (module's dir), 2 = parent, ...
                pkg = pkg[: len(pkg) - node.level]
                base = ".".join([*pkg, base]) if base else ".".join(pkg)
            for alias in node.names:
                if alias.name == "*":
                    continue
                imports[alias.asname or alias.name] = f"{base}.{alias.name}"
    return imports


class _DefCollector:
    """Walk one module, minting FunctionInfos for every def."""

    def __init__(self, info: ModuleInfo) -> None:
        self.info = info

    def collect(self) -> None:
        for node in self.info.ctx.tree.body:
            if isinstance(node, _FUNC_NODES):
                fn = self._mint(node, qual=node.name, cls=None, parent=None)
                self.info.functions[node.name] = fn
            elif isinstance(node, ast.ClassDef):
                methods: dict[str, FunctionInfo] = {}
                for sub in node.body:
                    if isinstance(sub, _FUNC_NODES):
                        fn = self._mint(
                            sub, qual=f"{node.name}.{sub.name}",
                            cls=node.name, parent=None,
                        )
                        methods[sub.name] = fn
                self.info.classes[node.name] = methods

    def _mint(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        *,
        qual: str,
        cls: str | None,
        parent: FunctionInfo | None,
    ) -> FunctionInfo:
        fn = FunctionInfo(
            name=node.name,
            qualname=qual,
            path=self.info.ctx.path,
            module=self.info.module,
            cls=cls,
            node=node,
            ctx=self.info.ctx,
            parent=parent,
            calls=_own_calls(node),
        )
        self.info.all_functions.append(fn)
        # Nested defs (closure bodies): children carry the closure edge.
        for stmt in ast.walk(node):
            if stmt is node or not isinstance(stmt, _FUNC_NODES):
                continue
            # Only direct nesting: the nearest enclosing def must be node.
            if self._nearest_def(node, stmt) is node:
                child = self._mint(
                    stmt,
                    qual=f"{qual}.<locals>.{stmt.name}",
                    cls=cls,
                    parent=fn,
                )
                fn.children.append(child)
        return fn

    @staticmethod
    def _nearest_def(root: ast.AST, target: ast.AST) -> ast.AST | None:
        """The innermost def enclosing *target* under *root* (by walk)."""
        best: ast.AST | None = None

        def descend(node: ast.AST, owner: ast.AST) -> bool:
            nonlocal best
            if node is target:
                best = owner
                return True
            for child in ast.iter_child_nodes(node):
                next_owner = node if isinstance(node, _FUNC_NODES) else owner
                if descend(child, next_owner):
                    return True
            return False

        descend(root, root)
        return best


class ProjectIndex:
    """Symbol tables + call resolution over a set of linted modules."""

    def __init__(self, ctxs: Iterable[ModuleContext]) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.by_module: dict[str, ModuleInfo] = {}
        for ctx in ctxs:
            mod = module_name(ctx.repro_relpath)
            info = ModuleInfo(ctx=ctx, module=mod)
            info.imports = _collect_imports(ctx.tree, mod)
            _DefCollector(info).collect()
            self.modules[ctx.path] = info
            if mod is not None:
                self.by_module[mod] = info

    # -- lookup ---------------------------------------------------------
    def module_of(self, ctx_or_path: ModuleContext | str) -> ModuleInfo | None:
        path = (
            ctx_or_path if isinstance(ctx_or_path, str) else ctx_or_path.path
        )
        return self.modules.get(path)

    def functions_in(self, ctx: ModuleContext) -> list[FunctionInfo]:
        info = self.module_of(ctx)
        return info.all_functions if info else []

    def entry_points(self, ctx: ModuleContext) -> list[FunctionInfo]:
        """Module-level functions and class methods (no nested defs)."""
        info = self.module_of(ctx)
        if info is None:
            return []
        out = list(info.functions.values())
        for methods in info.classes.values():
            out.extend(methods.values())
        return out

    # -- resolution -----------------------------------------------------
    def _resolve_dotted(self, target: str) -> FunctionInfo | None:
        """Resolve ``repro.amg.smoothers.bind_l1_jacobi`` by longest
        module-prefix match."""
        parts = target.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            mod = ".".join(parts[:cut])
            info = self.by_module.get(mod)
            if info is None:
                continue
            rest = parts[cut:]
            if len(rest) == 1:
                hit = info.functions.get(rest[0])
                if hit is not None:
                    return hit
                # ``from repro.x import y`` re-export chain, one hop.
                fwd = info.imports.get(rest[0])
                if fwd is not None and fwd != target:
                    return self._resolve_dotted(fwd)
            elif len(rest) == 2:
                methods = info.classes.get(rest[0])
                if methods:
                    return methods.get(rest[1])
        return None

    def resolve_call(
        self, caller: FunctionInfo, call: ast.Call
    ) -> FunctionInfo | None:
        """Best-effort resolution of *call* from inside *caller*."""
        name = dotted_name(call.func)
        if name is None:
            return None
        return self.resolve_name(caller, name)

    def resolve_name(
        self, caller: FunctionInfo, name: str
    ) -> FunctionInfo | None:
        info = self.modules.get(caller.path)
        if info is None:
            return None
        parts = name.split(".")
        # self.method() / cls.method(): same-class dispatch.
        if len(parts) == 2 and parts[0] in ("self", "cls") and caller.cls:
            methods = info.classes.get(caller.cls, {})
            return methods.get(parts[1])
        if len(parts) == 1:
            # Enclosing scope chain: nested defs of the caller, then of
            # each ancestor, then module level.
            scope: FunctionInfo | None = caller
            while scope is not None:
                for child in scope.children:
                    if child.name == parts[0]:
                        return child
                if scope.parent is None and scope.name == parts[0]:
                    pass  # recursion lands on module lookup below
                scope = scope.parent
            hit = info.functions.get(parts[0])
            if hit is not None:
                return hit
            target = info.imports.get(parts[0])
            return self._resolve_dotted(target) if target else None
        # alias.attr...: resolve the head through the import table.
        head_target = info.imports.get(parts[0])
        if head_target is not None:
            return self._resolve_dotted(".".join([head_target, *parts[1:]]))
        return None

    # -- traversal ------------------------------------------------------
    def reachable(
        self, root: FunctionInfo, *, private_only: bool = False,
        same_module: bool = False,
    ) -> Iterator[FunctionInfo]:
        """Functions reachable from *root* through resolved project calls
        and closure edges, *root* included.

        ``private_only`` restricts traversal to ``_``-prefixed callees
        (the delegation pattern R4/R5 follow); ``same_module`` keeps the
        walk inside *root*'s file.
        """
        seen: set[int] = set()
        stack = [root]
        while stack:
            fn = stack.pop()
            if id(fn) in seen:
                continue
            seen.add(id(fn))
            yield fn
            nxt: list[FunctionInfo] = list(fn.children)  # closure edges
            for call in fn.calls:
                callee = self.resolve_call(fn, call)
                if callee is None:
                    continue
                if private_only and callee.is_public and callee is not root:
                    continue
                if same_module and callee.path != root.path:
                    continue
                nxt.append(callee)
            stack.extend(n for n in nxt if id(n) not in seen)
