"""Finding reporters: human text and machine JSON."""

from __future__ import annotations

import json

from repro.lint.engine import LintResult
from repro.lint.finding import RULES


def render_text(result: LintResult) -> str:
    lines = [f.format_text() for f in result.findings]
    n_err = len(result.errors())
    n_warn = len(result.warnings())
    n_adv = len(result.advisories())
    lines.append(
        f"repro.lint: {result.files_checked} files checked — "
        f"{n_err} error(s), {n_warn} warning(s), {n_adv} advisory"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    payload = {
        "version": 1,
        "files_checked": result.files_checked,
        "counts": {
            "error": len(result.errors()),
            "warning": len(result.warnings()),
            "advisory": len(result.advisories()),
        },
        "rules": {
            rid: {"name": rule.name, "severity": rule.severity.value}
            for rid, rule in RULES.items()
        },
        "findings": [f.to_json() for f in result.findings],
    }
    return json.dumps(payload, indent=2)
