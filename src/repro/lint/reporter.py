"""Finding reporters: human text, machine JSON, and SARIF 2.1.0.

SARIF (Static Analysis Results Interchange Format) is what code hosts
and CI annotation UIs ingest; emitting it makes the analyzer's findings
show up inline on changed lines instead of living in a job log.  The
renderer maps the registry onto ``tool.driver.rules``, severities onto
SARIF levels (ERROR -> ``error``, WARNING -> ``warning``, ADVISORY ->
``note``), and reuses the baseline's content-addressed fingerprint as
``partialFingerprints`` so host-side result matching survives line
drift, exactly like the baseline does.
"""

from __future__ import annotations

import json

from repro.lint.baseline import fingerprints
from repro.lint.engine import LintResult
from repro.lint.finding import RULES, Severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_SARIF_LEVEL = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.ADVISORY: "note",
}


def _stale_lines(result: LintResult) -> list[str]:
    lines = []
    for fp, entry in sorted(result.stale_baseline.items()):
        lines.append(
            f"stale baseline entry {fp}: {entry.get('rule')} at "
            f"{entry.get('path')}:{entry.get('line')} no longer found "
            "— run with --prune-baseline to drop it"
        )
    return lines


def render_text(result: LintResult) -> str:
    lines = [f.format_text() for f in result.findings]
    lines += _stale_lines(result)
    n_err = len(result.errors())
    n_warn = len(result.warnings())
    n_adv = len(result.advisories())
    lines.append(
        f"repro.lint: {result.files_checked} files checked — "
        f"{n_err} error(s), {n_warn} warning(s), {n_adv} advisory"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    payload = {
        "version": 1,
        "files_checked": result.files_checked,
        "counts": {
            "error": len(result.errors()),
            "warning": len(result.warnings()),
            "advisory": len(result.advisories()),
        },
        "rules": {
            rid: {"name": rule.name, "severity": rule.severity.value}
            for rid, rule in RULES.items()
        },
        "findings": [f.to_json() for f in result.findings],
        "stale_baseline": [
            {"fingerprint": fp, **entry}
            for fp, entry in sorted(result.stale_baseline.items())
        ],
    }
    return json.dumps(payload, indent=2)


def render_sarif(result: LintResult) -> str:
    """The findings as a single-run SARIF 2.1.0 log."""
    fps = {
        id(f): fp for f, fp in fingerprints(result.findings, result.sources)
    }
    rule_ids = sorted(RULES)
    rule_index = {rid: i for i, rid in enumerate(rule_ids)}
    driver = {
        "name": "repro.lint",
        "informationUri": "https://example.invalid/repro-lint",
        "rules": [
            {
                "id": rid,
                "name": RULES[rid].name,
                "shortDescription": {"text": RULES[rid].name},
                "fullDescription": {"text": RULES[rid].description},
                "defaultConfiguration": {
                    "level": _SARIF_LEVEL[RULES[rid].severity]
                },
            }
            for rid in rule_ids
        ],
    }
    results = [
        {
            "ruleId": f.rule,
            "ruleIndex": rule_index[f.rule],
            "level": _SARIF_LEVEL[f.severity],
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.path},
                        "region": {"startLine": max(f.line, 1)},
                    }
                }
            ],
            "partialFingerprints": {
                "reproLintFingerprint/v1": fps.get(id(f), "")
            },
        }
        for f in result.findings
    ]
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {"driver": driver},
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2)
