"""Orchestration: walk files, run rules, apply suppressions + baseline."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

from repro.lint.baseline import Baseline
from repro.lint.context import ModuleContext, load_module
from repro.lint.finding import RULES, Finding, Severity, make_finding
from repro.lint.rules_alloc import check_hot_loop_alloc
from repro.lint.rules_constants import check_constant_provenance
from repro.lint.rules_dtype import check_dtype_flow
from repro.lint.rules_invariants import (
    check_contract_hooks,
    check_root_spans,
    check_scatter_ban,
)
from repro.lint.suppress import apply_suppressions, parse_suppressions

#: rule id -> checker.  R0 has no checker; it is emitted by the machinery.
CHECKERS: dict[str, Callable[[ModuleContext], list[Finding]]] = {
    "R1": check_dtype_flow,
    "R2": check_scatter_ban,
    "R3": check_constant_provenance,
    "R4": check_contract_hooks,
    "R5": check_hot_loop_alloc,
    "R6": check_root_spans,
}


@dataclass
class LintResult:
    """Findings plus the per-file sources needed for fingerprinting."""

    findings: list[Finding] = field(default_factory=list)
    sources: dict[str, list[str]] = field(default_factory=dict)
    files_checked: int = 0

    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    def advisories(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ADVISORY]

    def exit_code(self, strict: bool = False) -> int:
        if self.errors():
            return 1
        if strict and self.warnings():
            return 1
        return 0


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    seen: dict[Path, None] = {}
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                seen.setdefault(f, None)
        elif p.suffix == ".py":
            seen.setdefault(p, None)
        else:
            raise FileNotFoundError(f"not a python file or directory: {p}")
    return list(seen)


def _selected_rules(
    select: Iterable[str] | None, ignore: Iterable[str] | None
) -> set[str]:
    rules = set(select) if select else set(CHECKERS)
    unknown = (rules | set(ignore or ())) - set(RULES)
    if unknown:
        raise ValueError(f"unknown rule id(s): {sorted(unknown)}")
    return rules - set(ignore or ())


def lint_file(
    path: Path,
    rules: set[str] | None = None,
) -> tuple[list[Finding], list[str]]:
    """Lint one file; returns (findings, source lines)."""
    active = rules if rules is not None else set(CHECKERS)
    display = path.as_posix()
    try:
        ctx = load_module(path, display_path=display)
    except SyntaxError as exc:
        return (
            [
                make_finding(
                    "R0", display, exc.lineno or 1,
                    f"file does not parse: {exc.msg}",
                )
            ],
            [],
        )
    findings: list[Finding] = []
    for rule_id in sorted(active):
        findings += CHECKERS[rule_id](ctx)
    # Nested defs are walked as part of their enclosing scope too; keep
    # one finding per (rule, line, message).
    findings = list(dict.fromkeys(findings))
    suppressions, problems = parse_suppressions(ctx.path, ctx.lines)
    findings = apply_suppressions(findings, suppressions) + problems
    return findings, ctx.lines


def lint_paths(
    paths: Iterable[str | Path],
    *,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    baseline: Baseline | None = None,
) -> LintResult:
    """Lint *paths*; the module-level entry point used by the CLI and tests."""
    rules = _selected_rules(select, ignore)
    result = LintResult()
    for path in iter_python_files(paths):
        findings, lines = lint_file(path, rules)
        result.findings += findings
        result.sources[path.as_posix()] = lines
        result.files_checked += 1
    if baseline is not None:
        result.findings = baseline.filter(result.findings, result.sources)
    result.findings.sort(key=Finding.sort_key)
    return result
