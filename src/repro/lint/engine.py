"""Orchestration: parse the tree, build the project index, run rules.

Since PR 8 linting is a two-phase pass.  Phase one parses *every*
requested file and builds the :class:`~repro.lint.callgraph.ProjectIndex`
— the shared call graph the interprocedural rules (R4 delegation, R5
hidden in-loop allocation, R7/R8 buffer provenance) resolve edges
through.  Phase two runs the per-file checkers; each receives its own
:class:`ModuleContext` *and* the whole-project index, so a rule scoped to
one file can still see a binding in ``kernels/spmv.py`` hand a workspace
view to a closure minted in ``tape/recorder.py``.

The ``report_on`` parameter decouples *indexing* scope from *reporting*
scope: ``--changed`` indexes the full tree (the call graph needs
cross-file context) but reports findings only for the changed files.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

from repro.lint.baseline import Baseline
from repro.lint.callgraph import ProjectIndex
from repro.lint.context import ModuleContext, load_module
from repro.lint.finding import RULES, Finding, Severity, make_finding
from repro.lint.rules_aliasing import (
    check_escaping_views,
    check_stale_closure_capture,
    check_workspace_aliasing,
)
from repro.lint.rules_alloc import check_hot_loop_alloc
from repro.lint.rules_constants import check_constant_provenance
from repro.lint.rules_dtype import check_dtype_flow
from repro.lint.rules_invariants import (
    check_contract_hooks,
    check_root_spans,
    check_scatter_ban,
)
from repro.lint.rules_metrics import check_metric_name_provenance
from repro.lint.suppress import apply_suppressions, parse_suppressions

#: rule id -> checker.  R0 has no checker; it is emitted by the machinery.
#: Every checker takes ``(ctx, index)``; file-local rules ignore the index.
CHECKERS: dict[
    str, Callable[[ModuleContext, ProjectIndex], list[Finding]]
] = {
    "R1": check_dtype_flow,
    "R2": check_scatter_ban,
    "R3": check_constant_provenance,
    "R4": check_contract_hooks,
    "R5": check_hot_loop_alloc,
    "R6": check_root_spans,
    "R7": check_workspace_aliasing,
    "R8": check_escaping_views,
    "R9": check_stale_closure_capture,
    "R10": check_metric_name_provenance,
}

#: Rules that resolve call edges across files: when any of these is
#: active, ``--changed`` must still parse and index the full tree.
INTERPROCEDURAL_RULES = frozenset({"R4", "R5", "R7", "R8"})


@dataclass
class LintResult:
    """Findings plus the per-file sources needed for fingerprinting."""

    findings: list[Finding] = field(default_factory=list)
    sources: dict[str, list[str]] = field(default_factory=dict)
    files_checked: int = 0
    #: Baseline entries whose finding no longer exists (fingerprint not
    #: reproduced by this run): fp -> stored entry.  Populated only on
    #: full-tree runs (a scoped run cannot tell "gone" from "not seen").
    stale_baseline: dict[str, dict] = field(default_factory=dict)

    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    def advisories(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ADVISORY]

    def exit_code(self, strict: bool = False) -> int:
        if self.errors():
            return 1
        if strict and self.warnings():
            return 1
        return 0


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    seen: dict[Path, None] = {}
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                seen.setdefault(f, None)
        elif p.suffix == ".py":
            seen.setdefault(p, None)
        else:
            raise FileNotFoundError(f"not a python file or directory: {p}")
    return list(seen)


def _selected_rules(
    select: Iterable[str] | None, ignore: Iterable[str] | None
) -> set[str]:
    rules = set(select) if select else set(CHECKERS)
    unknown = (rules | set(ignore or ())) - set(RULES)
    if unknown:
        raise ValueError(f"unknown rule id(s): {sorted(unknown)}")
    return rules - set(ignore or ())


def _parse_files(
    files: Iterable[Path],
) -> tuple[list[ModuleContext], list[Finding], dict[str, list[str]]]:
    """Parse every file: (contexts, R0 parse findings, sources)."""
    ctxs: list[ModuleContext] = []
    problems: list[Finding] = []
    sources: dict[str, list[str]] = {}
    for path in files:
        display = path.as_posix()
        try:
            ctx = load_module(path, display_path=display)
        except SyntaxError as exc:
            problems.append(
                make_finding(
                    "R0", display, exc.lineno or 1,
                    f"file does not parse: {exc.msg}",
                )
            )
            sources[display] = []
            continue
        ctxs.append(ctx)
        sources[display] = ctx.lines
    return ctxs, problems, sources


def _check_module(
    ctx: ModuleContext, index: ProjectIndex, rules: set[str]
) -> list[Finding]:
    findings: list[Finding] = []
    for rule_id in sorted(rules):
        findings += CHECKERS[rule_id](ctx, index)
    # Nested defs are walked as part of their enclosing scope too; keep
    # one finding per (rule, line, message).
    findings = list(dict.fromkeys(findings))
    suppressions, problems = parse_suppressions(ctx.path, ctx.lines)
    return apply_suppressions(findings, suppressions) + problems


def lint_file(
    path: Path,
    rules: set[str] | None = None,
) -> tuple[list[Finding], list[str]]:
    """Lint one file in isolation; returns (findings, source lines).

    The project index contains just this file, so interprocedural rules
    resolve what they can locally (closures, same-class delegation,
    module-level helpers) and treat everything else as opaque.
    """
    active = rules if rules is not None else set(CHECKERS)
    ctxs, problems, sources = _parse_files([path])
    if not ctxs:
        return problems, sources.get(path.as_posix(), [])
    ctx = ctxs[0]
    index = ProjectIndex(ctxs)
    return _check_module(ctx, index, active) + problems, ctx.lines


def lint_paths(
    paths: Iterable[str | Path],
    *,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    baseline: Baseline | None = None,
    report_on: set[str] | None = None,
) -> LintResult:
    """Lint *paths*; the module-level entry point used by the CLI and tests.

    ``report_on`` (display paths, posix) restricts which files *report*
    findings; the whole tree is still parsed and indexed so cross-file
    call edges resolve.  ``None`` reports on everything.
    """
    rules = _selected_rules(select, ignore)
    result = LintResult()
    ctxs, problems, sources = _parse_files(iter_python_files(paths))
    index = ProjectIndex(ctxs)
    scoped = (
        problems
        if report_on is None
        else [f for f in problems if f.path in report_on]
    )
    result.findings += scoped
    for ctx in ctxs:
        if report_on is not None and ctx.path not in report_on:
            continue
        result.findings += _check_module(ctx, index, rules)
        result.files_checked += 1
    result.sources = sources
    if baseline is not None:
        if report_on is None:
            result.stale_baseline = baseline.stale_entries(
                result.findings, result.sources
            )
        result.findings = baseline.filter(result.findings, result.sources)
    result.findings.sort(key=Finding.sort_key)
    return result
