"""R2 — scatter-ban, R4 — contract-hook coverage, R6 — root spans.

R2 guards PR 1's invariant: every host-side scatter/accumulate goes
through ``repro.util.segops``, whose segmented reductions are
bit-identical to the unbuffered ``ufunc.at`` path but ~100x faster.  A
reintroduced ``np.add.at`` is both a performance regression and a second
rounding-order authority, so it is banned everywhere except inside the
engine itself.

R4 guards PR 2's invariant: checked mode (``REPRO_CHECK=1``) is only
exhaustive if *every* public kernel entry point consults the
``repro.check`` runtime hook.  A kernel function is recognised by the
``KernelRecord(...)`` it constructs; such a function must call
``...is_active()`` (or enter a ``checked_region``) somewhere on its
call path.

Since PR 8 the rule runs on the shared project call graph
(:mod:`repro.lint.callgraph`) instead of its own ``self._helper()``
pattern match: both facts — "builds a KernelRecord" and "consults the
hook" — are unioned over everything reachable from the entry point
through private delegation (``self._helper()``, module-level
``_helper()``) and closure edges, followed transitively and
generically.

R6 (advisory) guards the observability PR's invariant: a traced run
(``REPRO_TRACE=1``) only covers every phase if each public solver entry
point — ``setup`` / ``solve`` / ``precondition`` and the Krylov drivers —
opens a ``repro.obs`` span somewhere on its call path.  The span may be
opened in the entry point itself or in a private helper it delegates to
(``self._impl()`` / module-level ``_impl()``, followed transitively).
"""

from __future__ import annotations

import ast

from repro.lint.astutil import dotted_name
from repro.lint.callgraph import ProjectIndex
from repro.lint.context import ModuleContext
from repro.lint.finding import Finding, make_finding

#: ufuncs whose unbuffered ``.at`` scatter is banned outside segops.
_BANNED_UFUNCS = (
    "add",
    "subtract",
    "multiply",
    "bitwise_or",
    "bitwise_and",
    "bitwise_xor",
    "maximum",
    "minimum",
)


def check_scatter_ban(
    ctx: ModuleContext, index: ProjectIndex
) -> list[Finding]:
    """R2: flag ``np.<ufunc>.at(...)`` calls outside the scatter engine."""
    if ctx.is_scatter_engine():
        return []
    findings: list[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is None or not name.endswith(".at"):
            continue
        parts = name.split(".")
        if len(parts) == 3 and parts[0] in ("np", "numpy") and parts[1] in _BANNED_UFUNCS:
            findings.append(
                make_finding(
                    "R2",
                    ctx.path,
                    node.lineno,
                    f"unbuffered scatter {name}(...) outside util/segops.py: "
                    "use repro.util.segops.scatter_accumulate / segment_* — "
                    "bit-identical and vectorised",
                )
            )
    return findings


def _calls_in(body: list[ast.stmt]):
    for stmt in body:
        yield from (n for n in ast.walk(stmt) if isinstance(n, ast.Call))


def _unhooked(label: str) -> str:
    return (
        f"kernel entry point {label} builds a KernelRecord "
        "but never consults the repro.check hook "
        "(check_runtime.is_active() / checked_region): checked "
        "mode would silently skip this kernel"
    )


#: Public names that count as solver entry points for R6: each drives a
#: whole setup/solve phase when called from user code.
_SOLVER_ENTRY_NAMES = frozenset(
    {
        "setup",
        "solve",
        "solve_pcg",
        "solve_krylov",
        "precondition",
        "pcg",
        "gmres",
        "bicgstab",
    }
)

#: Call-name tails that open (or scope) a repro.obs span.
_SPAN_OPENERS = ("span", "phase_span", "trace_region", "traced")


def _span_facts(func) -> tuple[bool, set[str]]:
    """(opens a span, private helpers called) for one function body."""
    opens = any(
        (dotted_name(dec) or "").rsplit(".", 1)[-1] == "traced"
        or (
            isinstance(dec, ast.Call)
            and (dotted_name(dec.func) or "").rsplit(".", 1)[-1] == "traced"
        )
        for dec in func.decorator_list
    )
    callees: set[str] = set()
    for call in _calls_in(func.body):
        name = dotted_name(call.func) or ""
        tail = name.rsplit(".", 1)[-1]
        if tail in _SPAN_OPENERS or name.endswith("TRACER.open"):
            opens = True
        parts = name.split(".")
        if len(parts) == 2 and parts[0] in ("self", "cls"):
            callees.add(parts[1])
        elif len(parts) == 1 and parts[0].startswith("_"):
            callees.add(parts[0])
    return opens, callees


def _span_closure(name: str, facts: dict) -> bool:
    """Whether *name* opens a span itself or through private helpers
    (``self._impl()`` / module-level ``_impl()``), followed transitively."""
    seen: set[str] = set()
    stack = [name]
    while stack:
        current = stack.pop()
        if current in seen or current not in facts:
            continue
        seen.add(current)
        opens, callees = facts[current]
        if opens:
            return True
        stack.extend(m for m in callees if m.startswith("_"))
    return False


def check_root_spans(
    ctx: ModuleContext, index: ProjectIndex
) -> list[Finding]:
    """R6: public solver entry points should open a repro.obs span."""
    if not ctx.in_solver_scope():
        return []

    def spanless(label: str) -> str:
        return (
            f"public solver entry point {label} never opens a repro.obs "
            "span (obs_trace.span / phase_span / trace_region): traced "
            "runs (REPRO_TRACE=1) would record nothing for this phase"
        )

    findings: list[Finding] = []
    module_facts = {
        node.name: _span_facts(node)
        for node in ctx.tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    for node in ctx.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name not in _SOLVER_ENTRY_NAMES:
                continue
            if not _span_closure(node.name, module_facts):
                findings.append(
                    make_finding(
                        "R6", ctx.path, node.lineno,
                        spanless(f"{node.name}()"),
                    )
                )
        elif isinstance(node, ast.ClassDef):
            facts = {
                sub.name: _span_facts(sub)
                for sub in node.body
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            for sub in node.body:
                if not isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if sub.name not in _SOLVER_ENTRY_NAMES:
                    continue
                if not _span_closure(sub.name, facts):
                    findings.append(
                        make_finding(
                            "R6", ctx.path, sub.lineno,
                            spanless(f"{node.name}.{sub.name}()"),
                        )
                    )
    return findings


def check_contract_hooks(
    ctx: ModuleContext, index: ProjectIndex
) -> list[Finding]:
    """R4: kernel entry points must route through the repro.check hook.

    Both facts are unioned over the call-graph closure of the entry
    point: itself, its nested closures, and every ``_``-prefixed project
    function it reaches transitively (same-class methods and module-level
    helpers alike — the generic form of the old ``self._helper()``
    pattern).  Public callees are treated as independent entry points
    with their own obligation, so the walk stops at them.
    """
    if not ctx.in_contract_scope():
        return []
    findings: list[Finding] = []
    for fn in index.entry_points(ctx):
        if not fn.is_public:
            continue
        builds = consults = False
        for reached in index.reachable(fn, private_only=True):
            for call in reached.calls:
                name = dotted_name(call.func) or ""
                tail = name.rsplit(".", 1)[-1]
                if tail == "KernelRecord":
                    builds = True
                elif tail in ("is_active", "checked_region"):
                    consults = True
        if builds and not consults:
            findings.append(
                make_finding("R4", ctx.path, fn.node.lineno,
                             _unhooked(fn.label))
            )
    return findings
