"""R3 — constant-provenance: the paper's magic numbers have one home.

The reproduction hangs real behaviour off a handful of numeric design
points from the paper: the popcount-10 tensor-core threshold (Alg. 4
line 3 / Sec. IV.D.1), the 4x4 tile edge (``BLOCK_SIZE``), the 16-slot
tile (``TILE_SLOTS``), the SpMV load-balance variation threshold (0.5),
and the 8x8x4 MMA fragment shape.  Re-typing those literals at a use
site forks the design point: change the constant and the copy silently
keeps the old dispatch behaviour.  This rule flags literals that shadow
a named constant *in a context that marks them as that constant* —
threshold comparisons, ``tc_threshold=`` / ``block_size=`` keywords and
defaults, tile-shape tuples, and traffic formulas multiplying block
counts by 4/16.  The module that defines a constant is exempt for that
constant only.
"""

from __future__ import annotations

import ast
import re

from repro.lint.astutil import unparse
from repro.lint.context import ModuleContext
from repro.lint.finding import Finding, make_finding

_POPCOUNT_CTX = re.compile(r"pop|nnz|avg", re.IGNORECASE)
_VARIATION_CTX = re.compile(r"variation|cv\b", re.IGNORECASE)
_BLOCK_CTX = re.compile(r"blc|tile|block", re.IGNORECASE)

#: Call names whose tuple arguments are array shapes.
_SHAPE_CALLS = ("reshape", "zeros", "empty", "ones", "full", "broadcast_to")

_FRAG_TUPLES = {
    (8, 4): "(FRAG_M, FRAG_K)",
    (4, 8): "(FRAG_K, FRAG_N)",
    (8, 8): "(FRAG_M, FRAG_N)",
}


def _is_const(node: ast.AST, value) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
        and node.value == value
    )


def _int_tuple(node: ast.AST) -> tuple | None:
    if not isinstance(node, ast.Tuple):
        return None
    vals = []
    for elt in node.elts:
        if isinstance(elt, ast.Constant) and isinstance(elt.value, int):
            vals.append(elt.value)
        else:
            return None
    return tuple(vals)


def _finding(ctx, node, constant, detail) -> Finding | None:
    if ctx.owns_constant(constant.split(" ")[0]):
        return None
    return make_finding(
        "R3",
        ctx.path,
        node.lineno,
        f"literal shadows {constant}: {detail} — import the constant "
        "instead of re-typing the paper's design point",
    )


def _check_compare(ctx: ModuleContext, node: ast.Compare) -> list[Finding]:
    out: list[Finding] = []
    operands = [node.left, *node.comparators]
    for i, lit in enumerate(operands):
        others = operands[:i] + operands[i + 1 :]
        other_text = " ".join(unparse(o) for o in others)
        if _is_const(lit, 10) and _POPCOUNT_CTX.search(other_text):
            f = _finding(
                ctx, node, "TC_NNZ_THRESHOLD",
                f"popcount/nnz compared against literal 10 ({unparse(node)!r})",
            )
            if f:
                out.append(f)
        elif _is_const(lit, 0.5) and _VARIATION_CTX.search(other_text):
            f = _finding(
                ctx, node, "VARIATION_THRESHOLD",
                f"variation compared against literal 0.5 ({unparse(node)!r})",
            )
            if f:
                out.append(f)
        else:
            tup = _int_tuple(lit)
            if tup in _FRAG_TUPLES and ".shape" in other_text:
                f = _finding(
                    ctx, node, f"FRAG_SHAPE {_FRAG_TUPLES[tup]}",
                    f"MMA fragment shape written as {tup}",
                )
                if f:
                    out.append(f)
            elif tup == (4, 4) and ".shape" in other_text:
                f = _finding(
                    ctx, node, "BLOCK_SIZE",
                    "tile shape written as (4, 4)",
                )
                if f:
                    out.append(f)
    return out


def _check_keywordlike(ctx, name: str, value: ast.AST) -> Finding | None:
    if name == "tc_threshold" and isinstance(value, ast.Constant) and isinstance(
        value.value, (int, float)
    ):
        return _finding(
            ctx, value, "TC_NNZ_THRESHOLD",
            f"tc_threshold bound to literal {value.value!r}",
        )
    if name == "block_size" and _is_const(value, 4):
        return _finding(
            ctx, value, "BLOCK_SIZE", "block_size bound to literal 4"
        )
    return None


def _check_mult(ctx: ModuleContext, node: ast.BinOp) -> Finding | None:
    if not isinstance(node.op, ast.Mult):
        return None
    for lit, other in ((node.left, node.right), (node.right, node.left)):
        # Only inspect direct Constant factors; folded chains like
        # ``mat.blc_num * 4 * itemsize`` expose the inner BinOp here.
        if isinstance(other, ast.Constant):
            continue
        other_text = unparse(other)
        if not _BLOCK_CTX.search(other_text):
            continue
        if _is_const(lit, 4):
            return _finding(
                ctx, node, "BLOCK_SIZE",
                f"{other_text!r} scaled by literal 4",
            )
        if _is_const(lit, 16):
            return _finding(
                ctx, node, "TILE_SLOTS",
                f"{other_text!r} scaled by literal 16 (= BLOCK_SIZE**2)",
            )
    return None


def _check_shape_call(ctx: ModuleContext, node: ast.Call) -> list[Finding]:
    func = node.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None
    )
    if name not in _SHAPE_CALLS:
        return []
    out: list[Finding] = []
    for arg in node.args:
        tup = _int_tuple(arg)
        if tup is None:
            # reshape(-1, 4, 4) style: trailing literal (…, 4, 4) args.
            continue
        if tup in _FRAG_TUPLES:
            f = _finding(
                ctx, node, f"FRAG_SHAPE {_FRAG_TUPLES[tup]}",
                f"fragment allocated/reshaped with literal shape {tup}",
            )
            if f:
                out.append(f)
        elif len(tup) >= 2 and tup[-2:] == (4, 4):
            f = _finding(
                ctx, node, "BLOCK_SIZE",
                f"tile allocated/reshaped with literal shape {tup}",
            )
            if f:
                out.append(f)
    return out


def check_constant_provenance(
    ctx: ModuleContext, index: "ProjectIndex | None" = None
) -> list[Finding]:
    # Bench drivers build matrices with inline literals by design.
    if ctx.is_benchmark():
        return []
    findings: list[Finding] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Compare):
            findings += _check_compare(ctx, node)
        elif isinstance(node, ast.BinOp):
            f = _check_mult(ctx, node)
            if f:
                findings.append(f)
        elif isinstance(node, ast.Call):
            findings += _check_shape_call(ctx, node)
            for kw in node.keywords:
                if kw.arg:
                    f = _check_keywordlike(ctx, kw.arg, kw.value)
                    if f:
                        findings.append(f)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            pos = args.posonlyargs + args.args
            defaults = args.defaults
            for arg, default in zip(pos[len(pos) - len(defaults) :], defaults):
                f = _check_keywordlike(ctx, arg.arg, default)
                if f:
                    findings.append(f)
            for arg, default in zip(args.kwonlyargs, args.kw_defaults):
                if default is not None:
                    f = _check_keywordlike(ctx, arg.arg, default)
                    if f:
                        findings.append(f)
    return findings
