"""R10 — metric-name provenance: metric names have one home.

Every Prometheus-style metric name in the tree lives in
:mod:`repro.obs.names`; call sites import the constant.  A string literal
handed straight to the metrics API (``inc``/``set_gauge``/``observe``/
``observe_counts``, or a registry's ``counter``/``gauge``/``histogram``/
``value``/``total``) forks the name: rename the constant and the literal
copy silently keeps emitting the old series, and the payload-shape
assertions, the roofline attribution (which re-prices snapshots by
name), and the ``repro obs diff`` sentinel all lose sight of it.

The rule flags such literals anywhere outside ``obs/names.py`` (the
registry module itself) — including tests and benches, which read the
same constants.  Dynamic names (f-strings, variables, attribute reads)
are fine: the rule targets re-typed spellings, not computed ones.
"""

from __future__ import annotations

import ast

from repro.lint.context import ModuleContext
from repro.lint.finding import Finding, make_finding

#: Module (repro-relative) that owns every metric-name spelling.
NAMES_MODULE = "obs/names.py"

#: Module-level helpers of repro.obs.metrics whose first argument is a
#: metric name.  Matched on the bare name and as an attribute
#: (``obs_metrics.inc`` / ``obs.inc``).
_HELPER_FUNCS = frozenset({"inc", "set_gauge", "observe", "observe_counts"})

#: Registry methods whose first argument is a metric name.  Only matched
#: as attribute calls whose receiver looks like a registry (see
#: ``_registry_receiver``), so unrelated ``.value("x")`` calls on other
#: objects do not trip the rule.
_REGISTRY_METHODS = frozenset({"counter", "gauge", "histogram", "value", "total"})

#: Receiver spellings that denote a metrics registry at the call sites
#: used in this tree: the module-level singleton, a local registry
#: variable, or the accessor's result.
_REGISTRY_NAMES = frozenset({"REGISTRY", "registry", "reg"})


def _attr_chain_tail(node: ast.AST) -> str | None:
    """The final attribute/name component of a dotted expression."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _registry_receiver(node: ast.AST) -> bool:
    tail = _attr_chain_tail(node)
    if tail in _REGISTRY_NAMES:
        return True
    # ``get_registry().counter(...)`` / ``obs.get_registry().gauge(...)``
    if isinstance(node, ast.Call):
        return _attr_chain_tail(node.func) == "get_registry"
    return False


def _first_literal_arg(node: ast.Call) -> ast.Constant | None:
    if not node.args:
        return None
    arg = node.args[0]
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg
    return None


def _is_metric_call(node: ast.Call) -> str | None:
    """The offending API name when *node* is a metrics call with a
    string-literal name argument, else None."""
    func = node.func
    if isinstance(func, ast.Name) and func.id in _HELPER_FUNCS:
        return func.id
    if isinstance(func, ast.Attribute):
        if func.attr in _HELPER_FUNCS:
            # obs_metrics.inc / metrics.observe / obs.set_gauge — any
            # module-qualified spelling of the helper.
            return func.attr
        if func.attr in _REGISTRY_METHODS and _registry_receiver(func.value):
            return func.attr
    return None


def check_metric_name_provenance(
    ctx: ModuleContext, index: "ProjectIndex | None" = None
) -> list[Finding]:
    rel = ctx._rel()
    if rel == NAMES_MODULE:
        return []
    findings: list[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        api = _is_metric_call(node)
        if api is None:
            continue
        lit = _first_literal_arg(node)
        if lit is None:
            continue
        findings.append(
            make_finding(
                "R10",
                ctx.path,
                node.lineno,
                f"string-literal metric name {lit.value!r} passed to "
                f"{api}() — import the constant from repro.obs.names "
                "so renames cannot fork the series",
            )
        )
    return findings
