"""``repro.lint`` — repo-specific AST static analysis.

The runtime contract checker (``repro.check``, PR 2) verifies kernel
behaviour *dynamically*; this package catches the recurring bug classes
*statically*, before a kernel runs:

====  ====================  ========  =============================================
id    name                  severity  invariant guarded
====  ====================  ========  =============================================
R1    dtype-flow            error     no silent precision changes across the
                                      FP64/FP32/FP16 level policy
R2    scatter-ban           error     all scatters go through util/segops.py
R3    constant-provenance   error     paper constants (popcount 10, 4x4 tiles,
                                      variation 0.5, 8x8x4 fragments) are imported,
                                      never re-typed
R4    contract-hook         error     every public kernel entry point consults the
                                      repro.check runtime hook
R5    hot-loop-alloc        advisory  allocations inside kernel/format loops are
                                      cache candidates
====  ====================  ========  =============================================

Run with ``python -m repro.lint [paths]``; suppress a finding with
``# lint: disable=R2 -- <justification>`` (the justification is
mandatory); grandfather findings with ``--write-baseline``.
"""

from repro.lint.baseline import Baseline
from repro.lint.engine import LintResult, lint_file, lint_paths
from repro.lint.finding import RULES, Finding, Rule, Severity

__all__ = [
    "Baseline",
    "Finding",
    "LintResult",
    "RULES",
    "Rule",
    "Severity",
    "lint_file",
    "lint_paths",
]
