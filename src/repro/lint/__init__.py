"""``repro.lint`` — repo-specific static analysis, now interprocedural.

The runtime contract checker (``repro.check``, PR 2) verifies kernel
behaviour *dynamically*; this package catches the recurring bug classes
*statically*, before a kernel runs.  Since PR 8 the engine parses the
whole tree first, builds a project-wide call graph
(:mod:`repro.lint.callgraph`) and a buffer-provenance lattice
(:mod:`repro.lint.provenance`), and hands both to every rule — so a rule
can follow a workspace slot from ``tape/recorder.py`` into a binding
closure in ``kernels/spmv.py``.

====  =====================  ========  ============================================
id    name                   severity  invariant guarded
====  =====================  ========  ============================================
R1    dtype-flow             error     no silent precision changes across the
                                       FP64/FP32/FP16 level policy
R2    scatter-ban            error     all scatters go through util/segops.py
R3    constant-provenance    error     paper constants (popcount 10, 4x4 tiles,
                                       variation 0.5, 8x8x4 fragments) are
                                       imported, never re-typed
R4    contract-hook          error     every public kernel entry point consults
                                       the repro.check runtime hook (delegation
                                       followed through the call graph)
R5    hot-loop-alloc         advisory  allocations inside kernel/format/solver/
                                       tape loops — including those hidden in
                                       private callees — are cache candidates
R6    root-span              advisory  public solver entry points open a
                                       repro.obs span
R7    workspace-aliasing     error     no dead double-writes to a tape workspace
                                       slot; out= never aliases a read operand of
                                       a non-alias-safe kernel
R8    escaping-view          error     no workspace slot, view of one, or
                                       binding-owned buffer escapes a public
                                       function or closure without .copy()
R9    stale-closure-capture  warning   no late-binding loop-variable capture in
                                       binding loops
====  =====================  ========  ============================================

Run with ``python -m repro.lint [paths]``; suppress a finding with
``# lint: disable=R2 -- <justification>`` (the justification is
mandatory); grandfather findings with ``--write-baseline``; drop stale
baseline entries with ``--prune-baseline``; scope a fast pre-commit run
with ``--changed``; emit SARIF with ``--format=sarif`` / ``--sarif-out``.
"""

from repro.lint.baseline import Baseline
from repro.lint.callgraph import FunctionInfo, ModuleInfo, ProjectIndex
from repro.lint.engine import LintResult, lint_file, lint_paths
from repro.lint.finding import RULES, Finding, Rule, Severity
from repro.lint.provenance import Prov, ProvenanceAnalyzer

__all__ = [
    "Baseline",
    "Finding",
    "FunctionInfo",
    "LintResult",
    "ModuleInfo",
    "ProjectIndex",
    "Prov",
    "ProvenanceAnalyzer",
    "RULES",
    "Rule",
    "Severity",
    "lint_file",
    "lint_paths",
]
