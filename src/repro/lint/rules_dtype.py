"""R1 — dtype-flow: silent precision changes across the level policy.

AmgT's mixed-precision schedule (FP64 / FP32 / FP16 by level) only works
if precision changes are *explicit*: quantisation happens once per
operator (``OperatorCache.tiles``), widening happens at declared points,
and accumulators state their dtype.  numpy makes all three easy to break
silently, so this rule flags:

* **scalar-mix** — arithmetic that combines a low-precision (FP16/FP32)
  array with a bare Python ``float`` literal.  Under value-based casting
  the result dtype depends on the scalar's value; under NEP 50 it stays
  low precision while the author may have expected float64.  Either way
  the precision of the expression is an accident of the numpy version.
* **silent-widening** — ``<low-precision>.astype(np.float64)`` without an
  explicit ``casting=`` keyword at a kernel boundary.  Widening a
  quantised array is semantically meaningful in this codebase (it is the
  accumulate step of the tensor-core contract); it must either go
  through ``OperatorCache.tiles`` or spell out its casting intent.
* **raw-accumulator** — ``np.zeros`` / ``np.empty`` without ``dtype=`` in
  the solve-phase modules.  Work vectors there are accumulators in the
  paper's sense; they must be created via the
  :func:`repro.amg.precision.accumulator` helper (or state a dtype) so
  the level policy has a single audit point.
"""

from __future__ import annotations

import ast

from repro.lint.astutil import (
    call_keyword,
    is_float64_dtype,
    is_low_precision_dtype,
    is_numpy_attr,
    unparse,
)
from repro.lint.context import ModuleContext
from repro.lint.finding import Finding, make_finding

_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow)

#: numpy constructors whose ``dtype=`` keyword fixes the result dtype.
_CONSTRUCTORS = (
    "array",
    "asarray",
    "zeros",
    "empty",
    "ones",
    "full",
    "zeros_like",
    "empty_like",
    "ones_like",
    "full_like",
    "arange",
)


def _expr_low_precision(node: ast.AST, low_names: set[str]) -> bool:
    """Conservative syntactic judgement: is *node* a low-precision array?"""
    if isinstance(node, ast.Name):
        return node.id in low_names
    if isinstance(node, ast.Subscript):
        return _expr_low_precision(node.value, low_names)
    if isinstance(node, ast.BinOp):
        return _expr_low_precision(node.left, low_names) or _expr_low_precision(
            node.right, low_names
        )
    if isinstance(node, ast.Call):
        func = node.func
        # x.astype(np.float16) / np.float32(x)
        if isinstance(func, ast.Attribute) and func.attr == "astype":
            if node.args and is_low_precision_dtype(node.args[0]):
                return True
        if is_numpy_attr(func, "float16", "float32", "half", "single"):
            return True
        if isinstance(func, ast.Attribute) and func.attr in _CONSTRUCTORS:
            dt = call_keyword(node, "dtype")
            if dt is not None and is_low_precision_dtype(dt):
                return True
    return False


def _collect_low_names(func: ast.AST) -> set[str]:
    """Names assigned (anywhere in *func*) from a low-precision expression."""
    low: set[str] = set()
    # Two passes so `b = a * 2` picks up `a = x.astype(np.float16)` even
    # when the textual order is unhelpful; the tree is small.
    for _ in range(2):
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
                value = node.value
            else:
                continue
            if _expr_low_precision(value, low):
                for t in targets:
                    if isinstance(t, ast.Name):
                        low.add(t.id)
    return low


def _scan_scope(
    ctx: ModuleContext, scope: ast.AST, low_names: set[str]
) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(scope):
        if isinstance(node, ast.BinOp) and isinstance(node.op, _ARITH_OPS):
            for lit, other in ((node.left, node.right), (node.right, node.left)):
                if (
                    isinstance(lit, ast.Constant)
                    and isinstance(lit.value, float)
                    and _expr_low_precision(other, low_names)
                ):
                    findings.append(
                        make_finding(
                            "R1",
                            ctx.path,
                            node.lineno,
                            "low-precision array mixed with Python float "
                            f"scalar {lit.value!r}: the result dtype is an "
                            "accident of numpy's casting rules; cast the "
                            "scalar with the level's np_dtype/accum_dtype "
                            "explicitly",
                        )
                    )
                    break
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "astype"
                and node.args
                and is_float64_dtype(node.args[0])
                and _expr_low_precision(func.value, low_names)
                and call_keyword(node, "casting") is None
            ):
                findings.append(
                    make_finding(
                        "R1",
                        ctx.path,
                        node.lineno,
                        f"silent widening of {unparse(func.value)!r} to "
                        "float64: widen via OperatorCache.tiles or pass an "
                        "explicit casting= to mark the accumulate boundary",
                    )
                )
    return findings


def _accumulator_findings(ctx: ModuleContext) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        if not is_numpy_attr(node.func, "zeros", "empty"):
            continue
        if call_keyword(node, "dtype") is not None:
            continue
        findings.append(
            make_finding(
                "R1",
                ctx.path,
                node.lineno,
                f"solve-phase accumulator {unparse(node)!r} created without "
                "dtype provenance: use repro.amg.precision.accumulator() "
                "(or state dtype=) so the level policy has one audit point",
            )
        )
    return findings


def check_dtype_flow(
    ctx: ModuleContext, index: "ProjectIndex | None" = None
) -> list[Finding]:
    """Run the R1 sub-checks that apply to *ctx*'s scope."""
    findings: list[Finding] = []
    if ctx.in_kernel_scope():
        # Each function is a scope of its own so tracked locals do not
        # leak across functions; fixture files with no functions are
        # scanned whole.
        scopes: list[ast.AST] = [
            n
            for n in ast.walk(ctx.tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for scope in scopes or [ctx.tree]:
            findings += _scan_scope(ctx, scope, _collect_low_names(scope))
    if ctx.in_accumulator_scope():
        findings += _accumulator_findings(ctx)
    return findings
