"""Per-line suppressions: ``# lint: disable=R2 -- justification``.

A suppression must carry a justification after ``--``; the analyzer
treats a bare ``# lint: disable=R2`` as an R0 error — the whole point of
a repo-specific lint is that every override documents *why* the
invariant does not apply at that site.

Placement:

* inline (on the flagged line) — suppresses findings on that line;
* on its own line — suppresses findings on the next non-blank,
  non-comment line (the conventional "decorator" position).

``disable=all`` suppresses every rule except R0.  Comments are located
with :mod:`tokenize`, so lint-control text inside strings and docstrings
(this module included) is never mistaken for a directive.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass

from repro.lint.finding import RULES, Finding, make_finding

_SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*disable=(?P<rules>[A-Za-z0-9_,\s]+?)"
    r"(?:\s*--\s*(?P<why>.*\S))?\s*$"
)

_CONTROL_RE = re.compile(r"#\s*lint\s*:")


@dataclass(frozen=True)
class Suppression:
    """One parsed suppression comment."""

    comment_line: int  # where the comment sits
    target_line: int  # the line whose findings it suppresses
    rules: frozenset[str]  # rule ids, or {'all'}
    justification: str

    def matches(self, finding: Finding) -> bool:
        if finding.line != self.target_line:
            return False
        if finding.rule == "R0":  # lint-integrity findings stay visible
            return False
        return finding.rule in self.rules or "all" in self.rules


def _next_code_line(lines: list[str], after: int) -> int:
    """1-based number of the first non-blank, non-comment line after *after*."""
    for i in range(after, len(lines)):
        stripped = lines[i].strip()
        if stripped and not stripped.startswith("#"):
            return i + 1
    return after  # trailing comment: suppress nothing real


def _comment_tokens(source: str):
    """(line_number, comment_text) for every real comment in *source*."""
    reader = io.StringIO(source).readline
    try:
        for tok in tokenize.generate_tokens(reader):
            if tok.type == tokenize.COMMENT:
                yield tok.start[0], tok.string
    except (tokenize.TokenError, IndentationError):
        # The AST parse already reported unparsable files; stop quietly.
        return


def parse_suppressions(
    path: str, lines: list[str]
) -> tuple[list[Suppression], list[Finding]]:
    """Scan the comments of a file for suppression directives.

    Returns the usable suppressions plus R0 findings for malformed ones
    (unknown rule ids, missing justification).
    """
    source = "\n".join(lines) + "\n"
    suppressions: list[Suppression] = []
    problems: list[Finding] = []
    for lineno, comment in _comment_tokens(source):
        if not _CONTROL_RE.search(comment):
            continue
        m = _SUPPRESS_RE.search(comment)
        if m is None:
            problems.append(
                make_finding(
                    "R0",
                    path,
                    lineno,
                    "unrecognised lint control comment; expected "
                    "'# lint: disable=<RULES> -- <justification>'",
                )
            )
            continue
        rule_ids = {r.strip() for r in m.group("rules").split(",") if r.strip()}
        unknown = {r for r in rule_ids if r != "all" and r not in RULES}
        if unknown:
            problems.append(
                make_finding(
                    "R0",
                    path,
                    lineno,
                    f"suppression names unknown rule(s): {sorted(unknown)}",
                )
            )
            rule_ids -= unknown
        why = (m.group("why") or "").strip()
        if not why:
            problems.append(
                make_finding(
                    "R0",
                    path,
                    lineno,
                    "suppression is missing its justification; write "
                    "'# lint: disable=RULE -- <why the invariant does not "
                    "apply here>'",
                )
            )
            continue
        if not rule_ids:
            continue
        raw = lines[lineno - 1] if lineno - 1 < len(lines) else ""
        standalone = raw.strip().startswith("#")
        target = _next_code_line(lines, lineno) if standalone else lineno
        suppressions.append(
            Suppression(
                comment_line=lineno,
                target_line=target,
                rules=frozenset(rule_ids),
                justification=why,
            )
        )
    return suppressions, problems


def apply_suppressions(
    findings: list[Finding], suppressions: list[Suppression]
) -> list[Finding]:
    """Drop findings matched by a suppression."""
    if not suppressions:
        return findings
    return [
        f
        for f in findings
        if not any(s.matches(f) for s in suppressions)
    ]
