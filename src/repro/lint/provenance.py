"""Buffer-provenance lattice for ndarray values.

The tape/binding layer's memory-safety contract (PR 6) is a borrow
checker's problem statement: ``Workspace`` slots are owned by the tape,
results handed to callers are always copies, binding closures reuse
scratch buffers that must never escape a single call.  This module
tracks where each ndarray value *came from* through def-use chains:

======================  ==============================================
provenance              meaning
======================  ==============================================
``FRESH``               allocated in the current scope (``np.zeros``,
                        ``accumulator()``, ``.copy()``, ufunc results)
``OWNED``               a workspace slot (``ws.x[level]``), a buffer
                        allocated in an *enclosing* scope and reused
                        across calls of a closure, or a value a callee
                        summary reports as owned
``VIEW(base)``          a view (slice / ``.T`` / ``reshape`` /
                        ``asarray``) of *base* — escaping a view of an
                        owned buffer is as bad as escaping the buffer
``PARAM(i)``            passthrough of parameter *i* (resolved at call
                        sites when applying a summary)
``WSOBJ`` / ``WSFIELD``  a ``Workspace`` instance / one of its slot
                        lists (``ws.x``) — subscripting yields OWNED
``FROZEN``              a buffer made read-only via
                        ``setflags(write=False)``: sharing it is safe
``UNKNOWN``             anything the analysis cannot classify
======================  ==============================================

Function *summaries* abstract the provenance of return values over the
parameters, so the classification crosses calls: if
``_get_slot(ws, i)`` returns ``ws.x[i]``, every caller's
``_get_slot(...)`` result is OWNED.  Summaries are computed on demand
with a cycle guard (recursive call chains degrade to UNKNOWN), which
gives the fixpoint for the acyclic call graphs the repo actually has.

The analysis is flow-insensitive per branch arm (statements are
interpreted in order; both arms of an ``if`` feed the same environment)
and deliberately conservative: unresolved calls, attribute reads on
arbitrary objects and container round-trips all degrade to UNKNOWN, so
the rules built on top (R7/R8) err toward silence, not noise.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.lint.astutil import dotted_name
from repro.lint.callgraph import FunctionInfo, ProjectIndex

__all__ = ["Prov", "FunctionAnalysis", "ProvenanceAnalyzer"]

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: numpy-level constructors that always return a new buffer.
_FRESH_CALLS = frozenset(
    {
        "zeros", "empty", "ones", "full", "arange", "linspace",
        "zeros_like", "empty_like", "ones_like", "full_like",
        "bincount", "concatenate", "stack", "hstack", "vstack",
        "array", "copy", "repeat", "tile", "einsum", "matmul", "dot",
        "where", "diff", "cumsum", "sort", "unique", "interp",
    }
)

#: repo-local allocator helpers (conventionally imported bare).
_FRESH_LOCAL = frozenset({"accumulator"})

#: methods/functions returning a view (or possibly the input itself).
_VIEW_CALLS = frozenset(
    {
        "reshape", "ravel", "view", "transpose", "swapaxes", "squeeze",
        "asarray", "ascontiguousarray", "asfortranarray", "atleast_1d",
        "atleast_2d",
    }
)

#: attribute reads that are views of the base array.
_VIEW_ATTRS = frozenset({"T", "real", "imag", "flat", "mT"})

#: names that denote a Workspace object wherever they appear.
_WS_NAMES = frozenset({"ws", "workspace"})
_WS_ATTRS = frozenset({"ws", "workspace"})


@dataclass(frozen=True)
class Prov:
    """One lattice point.  ``kind`` is the tag; ``base`` chains views,
    ``index`` identifies parameters, ``origin`` carries the human story
    ("workspace slot ws.x[level]") for findings."""

    kind: str  # unknown|fresh|owned|view|param|wsobj|wsfield|frozen|func
    base: "Prov | None" = None
    index: int = -1
    origin: str = ""

    # -- constructors ---------------------------------------------------
    @staticmethod
    def unknown() -> "Prov":
        return _UNKNOWN

    @staticmethod
    def fresh() -> "Prov":
        return _FRESH

    @staticmethod
    def owned(origin: str) -> "Prov":
        return Prov("owned", origin=origin)

    @staticmethod
    def view(base: "Prov") -> "Prov":
        # Collapse view-of-view; a view of UNKNOWN/FRESH keeps its base
        # so `is_owned` stays decidable in one hop.
        if base.kind == "view":
            return base
        return Prov("view", base=base)

    @staticmethod
    def param(i: int, name: str) -> "Prov":
        return Prov("param", index=i, origin=name)

    # -- predicates -----------------------------------------------------
    def root(self) -> "Prov":
        return self.base.root() if self.base is not None else self

    def is_owned(self) -> bool:
        return self.root().kind == "owned"

    def is_ws_object(self) -> bool:
        return self.kind in ("wsobj", "wsfield")

    def describe(self) -> str:
        r = self.root()
        prefix = "a view of " if self.kind == "view" else ""
        return prefix + (r.origin or r.kind)


_UNKNOWN = Prov("unknown")
_FRESH = Prov("fresh")
_WSOBJ = Prov("wsobj", origin="a Workspace object")
_WSFIELD = Prov("wsfield", origin="a Workspace slot list")
_FROZEN = Prov("frozen")
_FUNCVAL = Prov("func")

#: severity ranking used when joining branches: keep the most dangerous.
_RANK = {
    "owned": 6, "view": 5, "wsfield": 4, "wsobj": 3,
    "param": 2, "unknown": 1, "frozen": 1, "func": 0, "fresh": 0,
}


def join(a: Prov, b: Prov) -> Prov:
    if a == b:
        return a
    ra = _RANK.get(a.kind if a.kind != "view" else a.root().kind, 1)
    rb = _RANK.get(b.kind if b.kind != "view" else b.root().kind, 1)
    if a.kind == "view":
        ra = max(ra, _RANK.get(a.root().kind, 1))
    return a if ra >= rb else b


#: summary atoms: 'fresh' | 'owned' | 'unknown' | 'wsobj'
#: | ('param', i) | ('view-param', i)
Summary = object


@dataclass
class FunctionAnalysis:
    """Result of one function's intraprocedural pass."""

    fn: FunctionInfo
    env: dict[str, Prov]
    #: provenance of each `return <expr>` (expr node, prov)
    returns: list[tuple[ast.expr, Prov]]
    #: names frozen via setflags(write=False)
    frozen: set[str]

    def return_summary(self) -> tuple:
        """Abstract the joined return provenance over the parameters."""
        out = []
        for _, prov in self.returns:
            root = prov.root()
            if root.kind == "owned":
                out.append("owned")
            elif root.kind == "param":
                tag = "view-param" if prov.kind == "view" else "param"
                out.append((tag, root.index))
            elif prov.kind == "fresh" or root.kind == "fresh":
                out.append("fresh")
            elif root.kind in ("wsobj", "wsfield"):
                out.append("wsobj")
            else:
                out.append("unknown")
        return tuple(out)


class ProvenanceAnalyzer:
    """Computes per-function environments and cross-call summaries."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self._analyses: dict[int, FunctionAnalysis] = {}
        self._summaries: dict[int, tuple] = {}
        self._in_progress: set[int] = set()

    # -- public API -----------------------------------------------------
    def analysis(self, fn: FunctionInfo) -> FunctionAnalysis:
        cached = self._analyses.get(id(fn))
        if cached is None:
            cached = self._analyze(fn)
            self._analyses[id(fn)] = cached
        return cached

    def summary(self, fn: FunctionInfo) -> tuple:
        cached = self._summaries.get(id(fn))
        if cached is not None:
            return cached
        if id(fn) in self._in_progress:  # recursion: degrade to unknown
            return ("unknown",)
        self._in_progress.add(id(fn))
        try:
            summ = self.analysis(fn).return_summary()
        finally:
            self._in_progress.discard(id(fn))
        self._summaries[id(fn)] = summ
        return summ

    # -- intraprocedural pass -------------------------------------------
    def _seed_env(self, fn: FunctionInfo) -> dict[str, Prov]:
        env: dict[str, Prov] = {}
        for i, name in enumerate(fn.param_names()):
            if name in ("self", "cls") and i == 0 and fn.cls is not None:
                env[name] = _UNKNOWN
            elif name in _WS_NAMES:
                env[name] = _WSOBJ
            else:
                env[name] = Prov.param(i, f"parameter {name!r}")
        if fn.parent is not None:
            # Closure environment: values allocated in the enclosing
            # scope persist across calls of this closure — returning one
            # escapes a buffer that the next call will overwrite.
            parent_env = self.analysis(fn.parent).env
            for name, prov in parent_env.items():
                if name in env:
                    continue
                root = prov.root()
                if root.kind == "fresh":
                    env[name] = Prov.owned(
                        f"buffer {name!r} allocated in the enclosing scope "
                        f"of {fn.parent.qualname}() and reused across calls"
                    )
                elif root.kind in ("owned", "wsobj", "wsfield"):
                    env[name] = prov
                elif prov.kind == "frozen":
                    env[name] = prov
                # params of the parent stay unknown: arrays the *caller*
                # owns, not this closure.
        return env

    def _analyze(self, fn: FunctionInfo) -> FunctionAnalysis:
        env = self._seed_env(fn)
        ana = FunctionAnalysis(fn=fn, env=env, returns=[], frozen=set())
        # Mark sibling defs so closures are 'func', not arrays.
        for child in fn.children:
            env[child.name] = _FUNCVAL
        self._exec_block(fn.node.body, env, ana, fn)
        return ana

    def _exec_block(
        self,
        body: list[ast.stmt],
        env: dict[str, Prov],
        ana: FunctionAnalysis,
        fn: FunctionInfo,
    ) -> None:
        for stmt in body:
            self._exec_stmt(stmt, env, ana, fn)

    def _exec_stmt(self, stmt, env, ana, fn) -> None:
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value, env, fn)
            for target in stmt.targets:
                self._assign(target, stmt.value, value, env, fn)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            value = self.eval(stmt.value, env, fn)
            self._assign(stmt.target, stmt.value, value, env, fn)
        elif isinstance(stmt, ast.AugAssign):
            pass  # x += ... keeps x's identity
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            ana.returns.append(
                (stmt.value, self.eval(stmt.value, env, fn))
            )
        elif isinstance(stmt, ast.Expr):
            self._note_setflags(stmt.value, env, ana)
        elif isinstance(stmt, (ast.If, ast.For, ast.While, ast.Try)):
            for block in self._sub_blocks(stmt):
                self._exec_block(block, env, ana, fn)
        elif isinstance(stmt, ast.With):
            self._exec_block(stmt.body, env, ana, fn)
        # nested defs handled via fn.children; other stmts: no effect

    @staticmethod
    def _sub_blocks(stmt) -> list[list[ast.stmt]]:
        blocks = [stmt.body, getattr(stmt, "orelse", [])]
        for handler in getattr(stmt, "handlers", []):
            blocks.append(handler.body)
        blocks.append(getattr(stmt, "finalbody", []))
        return [b for b in blocks if b]

    def _assign(self, target, value_node, value: Prov, env, fn) -> None:
        if isinstance(target, ast.Name):
            prev = env.get(target.id)
            env[target.id] = join(prev, value) if prev is not None else value
        elif isinstance(target, ast.Tuple) and isinstance(
            value_node, ast.Tuple
        ) and len(target.elts) == len(value_node.elts):
            for t, v in zip(target.elts, value_node.elts):
                self._assign(t, v, self.eval(v, env, fn), env, fn)
        elif isinstance(target, ast.Tuple):
            for t in target.elts:
                if isinstance(t, ast.Name):
                    env[t.id] = _UNKNOWN
        # subscript/attribute stores do not change name provenance

    def _note_setflags(self, expr, env, ana) -> None:
        if not isinstance(expr, ast.Call):
            return
        name = dotted_name(expr.func) or ""
        parts = name.split(".")
        if len(parts) == 2 and parts[1] == "setflags":
            for kw in expr.keywords:
                if (
                    kw.arg == "write"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is False
                ):
                    env[parts[0]] = _FROZEN
                    ana.frozen.add(parts[0])

    # -- expression evaluation ------------------------------------------
    def eval(self, node: ast.expr, env: dict[str, Prov],
             fn: FunctionInfo) -> Prov:
        if isinstance(node, ast.Name):
            return env.get(node.id, _UNKNOWN)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node, env, fn)
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node, env, fn)
        if isinstance(node, ast.Call):
            return self._eval_call(node, env, fn)
        if isinstance(node, (ast.BinOp, ast.UnaryOp, ast.Compare)):
            return _FRESH  # array arithmetic allocates its result
        if isinstance(node, ast.IfExp):
            return join(
                self.eval(node.body, env, fn), self.eval(node.orelse, env, fn)
            )
        if isinstance(node, (ast.Tuple, ast.List)):
            # A container escaping an owned element escapes the element.
            prov = _FRESH
            for elt in node.elts:
                prov = join(prov, self.eval(elt, env, fn))
            return prov
        if isinstance(node, (ast.Lambda,)):
            return _FUNCVAL
        if isinstance(node, ast.NamedExpr):
            value = self.eval(node.value, env, fn)
            env[node.target.id] = value
            return value
        return _UNKNOWN

    def _eval_attribute(self, node: ast.Attribute, env, fn) -> Prov:
        base = self.eval(node.value, env, fn)
        # ws.x / self.workspace / tape.workspace -> slot list / ws object
        if node.attr in _WS_ATTRS:
            return _WSOBJ
        if base.kind == "wsobj":
            return _WSFIELD
        if node.attr in _VIEW_ATTRS and base.kind in (
            "owned", "view", "fresh", "param"
        ):
            return Prov.view(base)
        return _UNKNOWN

    def _eval_subscript(self, node: ast.Subscript, env, fn) -> Prov:
        base = self.eval(node.value, env, fn)
        if base.kind == "wsfield":
            return Prov.owned(
                f"workspace slot {ast.unparse(node) if hasattr(ast, 'unparse') else '<slot>'}"
            )
        if base.kind in ("owned", "view", "fresh", "param"):
            return Prov.view(base)
        return _UNKNOWN

    def _eval_call(self, node: ast.Call, env, fn) -> Prov:
        name = dotted_name(node.func) or ""
        parts = name.split(".")
        tail = parts[-1]
        if not tail and isinstance(node.func, ast.Attribute):
            # dotted_name cannot render chains through subscripts/calls
            # (ws.x[0].reshape); the method name is still decisive.
            tail = node.func.attr
        # Workspace(...) construction
        if tail == "Workspace":
            return _WSOBJ
        # .copy() always yields a fresh buffer, whatever the receiver.
        if tail == "copy" and isinstance(node.func, ast.Attribute):
            return _FRESH
        if tail == "astype":
            copy_kw = next(
                (kw.value for kw in node.keywords if kw.arg == "copy"), None
            )
            if (
                isinstance(copy_kw, ast.Constant) and copy_kw.value is False
                and isinstance(node.func, ast.Attribute)
            ):
                return Prov.view(self.eval(node.func.value, env, fn))
            return _FRESH
        if tail in _VIEW_CALLS:
            if isinstance(node.func, ast.Attribute):
                # x.reshape(...) — view of the receiver
                return Prov.view(self.eval(node.func.value, env, fn))
            if node.args:
                # np.asarray(x) may alias x: view of the argument
                return Prov.view(self.eval(node.args[0], env, fn))
            return _UNKNOWN
        if tail in _FRESH_CALLS or (len(parts) == 1 and tail in _FRESH_LOCAL):
            return _FRESH
        # Resolved project call: apply the callee's return summary.
        callee = self.index.resolve_call(fn, node)
        if callee is not None:
            return self._apply_summary(callee, node, env, fn)
        return _UNKNOWN

    def _apply_summary(self, callee: FunctionInfo, node: ast.Call,
                       env, fn) -> Prov:
        prov = _FRESH if self.summary(callee) else _UNKNOWN
        result = None
        for atom in self.summary(callee):
            if atom == "owned":
                cand = Prov.owned(
                    f"the return value of {callee.qualname}(), "
                    "which returns a workspace-owned buffer"
                )
            elif atom == "fresh":
                cand = _FRESH
            elif atom == "wsobj":
                cand = _WSOBJ
            elif isinstance(atom, tuple):
                tag, i = atom
                arg = self._arg_at(callee, node, i)
                base = self.eval(arg, env, fn) if arg is not None else _UNKNOWN
                cand = Prov.view(base) if tag == "view-param" else base
            else:
                cand = _UNKNOWN
            result = cand if result is None else join(result, cand)
        return result if result is not None else prov

    @staticmethod
    def _arg_at(callee: FunctionInfo, node: ast.Call, i: int):
        params = callee.param_names()
        offset = 1 if params and params[0] in ("self", "cls") and isinstance(
            node.func, ast.Attribute
        ) else 0
        pos = i - offset
        if 0 <= pos < len(node.args):
            return node.args[pos]
        if 0 <= i < len(params):
            wanted = params[i]
            for kw in node.keywords:
                if kw.arg == wanted:
                    return kw.value
        return None
