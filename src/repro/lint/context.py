"""Per-file analysis context: source, AST, scope classification.

Rules are scoped by where a module sits inside the ``repro`` package —
the dtype-flow rules only make sense in the kernel/format/solver layers,
the scatter-ban exempts the segmented-reduction engine itself, and the
constant-provenance rule must not flag the modules that *define* the
constants.  Files outside the package (test fixtures, ad-hoc snippets)
get every rule: the analyzer is strictest when it knows nothing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

#: Package subtrees whose kernels move quantised values around; the
#: dtype-flow expression checks (R1 scalar-mix / silent widening) apply.
KERNEL_SCOPE_DIRS = ("kernels", "formats", "amg", "hypre", "dist", "gpu")

#: Solve-phase modules whose zero-initialised work vectors are
#: *accumulators* in the paper's sense; R1 requires them to be created
#: via the repro.amg.precision helpers (explicit dtype provenance).
ACCUMULATOR_SCOPE = (
    "amg/cycle.py",
    "amg/solver.py",
    "amg/coarse.py",
    "amg/smoothers.py",
    "solvers/cg.py",
    "solvers/gmres.py",
    "solvers/bicgstab.py",
)

#: The one module allowed to touch the unbuffered ufunc scatter path.
SCATTER_ENGINE = "util/segops.py"

#: Modules in which R4 (contract-hook coverage) applies.
CONTRACT_SCOPE_DIR = "kernels"

#: Subtrees where R5 (hot-loop allocation) applies.  ``solvers`` holds
#: the Krylov iteration loops (one allocation there repeats every
#: iteration of every solve) and ``tape`` the record/replay engine whose
#: entire point is an allocation-free replay loop.
HOT_LOOP_SCOPE_DIRS = ("kernels", "formats", "solvers", "tape")

#: Individual modules outside those subtrees where R5 also applies.  The
#: smoother bindings close over tape workspace slots and run inside the
#: replay loop of every batched (and width-1) solve.
HOT_LOOP_SCOPE_FILES = ("amg/smoothers.py",)

#: Modules whose public entry points drive whole setup/solve phases; R6
#: (advisory) asks them to open a repro.obs root span so traced runs
#: (REPRO_TRACE=1) cover every phase.
SOLVER_SCOPE = (
    "amg/solver.py",
    "hypre/boomeramg.py",
    "dist/par_solver.py",
    "solvers/cg.py",
    "solvers/gmres.py",
    "solvers/bicgstab.py",
)

#: Subtrees where the interprocedural provenance rules (R7 workspace-
#: aliasing, R8 escaping-view) apply: everywhere buffers flow between
#: the tape, the bindings and the solvers.  ``util`` is excluded — the
#: segmented-reduction engine manipulates caller-provided arrays by
#: design and owns no workspace.
PROVENANCE_SCOPE_DIRS = (
    "kernels", "formats", "amg", "hypre", "dist", "solvers", "tape", "gpu",
)

#: Constant name -> module (repro-relative) that owns its definition.
#: The owner is exempt from R3 findings *for that constant only*.
CONSTANT_OWNERS = {
    "TC_NNZ_THRESHOLD": "formats/bitmap.py",
    "BLOCK_SIZE": "formats/bitmap.py",
    "TILE_SLOTS": "formats/bitmap.py",
    "VARIATION_THRESHOLD": "kernels/spmv.py",
    "WARP_CAPACITY": "kernels/spmv.py",
    "FRAG_SHAPE": "gpu/mma.py",
}


@dataclass
class ModuleContext:
    """Everything a rule needs to analyse one file."""

    path: str  # as reported in findings (normalised, posix separators)
    source: str
    tree: ast.Module
    #: Path relative to the ``repro`` package root ("kernels/spmv.py"),
    #: or None when the file is not inside a repro package tree.
    repro_relpath: str | None
    lines: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    # -- scope predicates ----------------------------------------------
    def _rel(self) -> str | None:
        return self.repro_relpath

    def in_kernel_scope(self) -> bool:
        rel = self._rel()
        if rel is None:
            return not self.is_benchmark()
        return rel.split("/", 1)[0] in KERNEL_SCOPE_DIRS

    def in_accumulator_scope(self) -> bool:
        rel = self._rel()
        if rel is None:
            return not self.is_benchmark()
        return rel in ACCUMULATOR_SCOPE

    def is_scatter_engine(self) -> bool:
        rel = self._rel()
        return rel == SCATTER_ENGINE

    def in_contract_scope(self) -> bool:
        rel = self._rel()
        if rel is None:
            return not self.is_benchmark()
        parts = rel.split("/")
        return len(parts) == 2 and parts[0] == CONTRACT_SCOPE_DIR

    def in_hot_loop_scope(self) -> bool:
        rel = self._rel()
        if rel is None:
            return True
        return (rel.split("/", 1)[0] in HOT_LOOP_SCOPE_DIRS
                or rel in HOT_LOOP_SCOPE_FILES)

    def in_solver_scope(self) -> bool:
        rel = self._rel()
        if rel is None:
            return not self.is_benchmark()
        return rel in SOLVER_SCOPE

    def in_provenance_scope(self) -> bool:
        rel = self._rel()
        if rel is None:
            return True
        return rel.split("/", 1)[0] in PROVENANCE_SCOPE_DIRS

    def is_benchmark(self) -> bool:
        """True for files under a ``benchmarks/`` tree outside the package.

        The benches are the perf ground truth, so the hot-loop and
        provenance rules (R2/R5/R7/R8/R9) apply there; the package-layout
        rules (R1/R3/R4/R6) do not — bench drivers legitimately build
        matrices with inline literals and never define kernel entry
        points.
        """
        return self._rel() is None and "benchmarks" in self.path.split("/")

    def owns_constant(self, constant: str) -> bool:
        rel = self._rel()
        return rel is not None and CONSTANT_OWNERS.get(constant) == rel


def repro_relative(path: Path) -> str | None:
    """Path relative to the innermost ``repro`` package dir, if any."""
    parts = path.as_posix().split("/")
    for i in range(len(parts) - 1, 0, -1):
        if parts[i - 1] == "repro":
            return "/".join(parts[i:])
    return None


def load_module(path: Path, display_path: str | None = None) -> ModuleContext:
    """Read and parse *path*.  Raises ``SyntaxError`` on unparsable input."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    return ModuleContext(
        path=display_path or path.as_posix(),
        source=source,
        tree=tree,
        repro_relpath=repro_relative(path),
    )
