"""R5 — hot-loop allocation (advisory).

PR 1's operator cache exists because per-call allocation and index
rebuilding dominated the host kernels.  Allocations *inside loops* in
``kernels/`` and ``formats/`` are the same smell one level down: each
iteration pays an allocator round-trip that a hoisted buffer or a cache
entry would amortise.  The same applies to the Krylov iteration loops
in ``solvers/`` (every in-loop allocation repeats once per solver
iteration) and to the tape replay loop in ``tape/`` (whose contract is
an allocation-free steady state), so both subtrees are in scope; the
flagged constructors include the repo's own ``accumulator(...)`` helper
alongside the raw numpy allocators.  The finding is advisory — small
fixed-trip loops (the 4-iteration bitmap sweeps) are often fine — so it
never fails the run; it exists to feed the cache-candidate backlog.
"""

from __future__ import annotations

import ast

from repro.lint.astutil import is_numpy_attr, unparse
from repro.lint.context import ModuleContext
from repro.lint.finding import Finding, make_finding


class _LoopAllocVisitor(ast.NodeVisitor):
    def __init__(self, ctx: ModuleContext) -> None:
        self.ctx = ctx
        self.loop_depth = 0
        self.findings: list[Finding] = []

    def _enter_loop(self, node) -> None:
        self.loop_depth += 1
        self.generic_visit(node)
        self.loop_depth -= 1

    visit_For = _enter_loop
    visit_While = _enter_loop

    def _is_alloc(self, func: ast.expr) -> bool:
        if is_numpy_attr(func, "zeros", "empty", "concatenate"):
            return True
        # The repo's own allocator: ``accumulator(n)`` from
        # repro.amg.precision, conventionally imported bare.
        return isinstance(func, ast.Name) and func.id == "accumulator"

    def visit_Call(self, node: ast.Call) -> None:
        if self.loop_depth > 0 and self._is_alloc(node.func):
            text = unparse(node)
            if len(text) > 60:
                text = text[:57] + "..."
            self.findings.append(
                make_finding(
                    "R5",
                    self.ctx.path,
                    node.lineno,
                    f"allocation {text!r} inside a loop: hoist the buffer or "
                    "move it into the per-operator cache if the loop is on a "
                    "kernel hot path",
                )
            )
        self.generic_visit(node)


def check_hot_loop_alloc(ctx: ModuleContext) -> list[Finding]:
    if not ctx.in_hot_loop_scope():
        return []
    visitor = _LoopAllocVisitor(ctx)
    visitor.visit(ctx.tree)
    return visitor.findings
