"""R5 — hot-loop allocation (advisory).

PR 1's operator cache exists because per-call allocation and index
rebuilding dominated the host kernels.  Allocations *inside loops* in
``kernels/`` and ``formats/`` are the same smell one level down: each
iteration pays an allocator round-trip that a hoisted buffer or a cache
entry would amortise.  The same applies to the Krylov iteration loops
in ``solvers/`` (every in-loop allocation repeats once per solver
iteration) and to the tape replay loop in ``tape/`` (whose contract is
an allocation-free steady state), so both subtrees are in scope; the
flagged constructors include the repo's own ``accumulator(...)`` helper
alongside the raw numpy allocators.  The finding is advisory — small
fixed-trip loops (the 4-iteration bitmap sweeps) are often fine — so it
never fails the run; it exists to feed the cache-candidate backlog.

Since PR 8 the rule also sees *hidden* in-loop allocation through the
project call graph: a loop calling a private same-module helper whose
body allocates unconditionally (outside the helper's own loops) pays the
allocator on every iteration just the same, but the per-file pass could
not see it.  Such calls are flagged at the call site, naming the
allocation they reach; allocations inside the helper's *own* loops are
not charged to the caller (the helper's own file already reports them).
"""

from __future__ import annotations

import ast

from repro.lint.astutil import dotted_name, is_numpy_attr, unparse
from repro.lint.callgraph import FunctionInfo, ProjectIndex
from repro.lint.context import ModuleContext
from repro.lint.finding import Finding, make_finding


def _is_alloc(func: ast.expr) -> bool:
    if is_numpy_attr(func, "zeros", "empty", "concatenate"):
        return True
    # The repo's own allocator: ``accumulator(n)`` from
    # repro.amg.precision, conventionally imported bare.
    return isinstance(func, ast.Name) and func.id == "accumulator"


class _LoopAllocVisitor(ast.NodeVisitor):
    def __init__(self, ctx: ModuleContext, index: ProjectIndex) -> None:
        self.ctx = ctx
        self.index = index
        self.loop_depth = 0
        self.findings: list[Finding] = []
        #: FunctionInfo for the innermost def being visited, maintained
        #: so in-loop *calls* can be resolved through the project index.
        self._fn_stack: list[FunctionInfo] = []
        self._by_node = {
            id(fn.node): fn for fn in index.functions_in(ctx)
        }

    def _enter_loop(self, node) -> None:
        self.loop_depth += 1
        self.generic_visit(node)
        self.loop_depth -= 1

    visit_For = _enter_loop
    visit_While = _enter_loop

    def _enter_def(self, node) -> None:
        fn = self._by_node.get(id(node))
        self._fn_stack.append(fn)
        # A nested def's body does not run as part of the enclosing loop;
        # its own loops start from depth 0.
        outer, self.loop_depth = self.loop_depth, 0
        self.generic_visit(node)
        self.loop_depth = outer
        self._fn_stack.pop()

    visit_FunctionDef = _enter_def
    visit_AsyncFunctionDef = _enter_def

    def visit_Call(self, node: ast.Call) -> None:
        if self.loop_depth > 0:
            if _is_alloc(node.func):
                text = unparse(node)
                if len(text) > 60:
                    text = text[:57] + "..."
                self.findings.append(
                    make_finding(
                        "R5",
                        self.ctx.path,
                        node.lineno,
                        f"allocation {text!r} inside a loop: hoist the "
                        "buffer or move it into the per-operator cache if "
                        "the loop is on a kernel hot path",
                    )
                )
            else:
                self._check_callee_alloc(node)
        self.generic_visit(node)

    # -- interprocedural: in-loop call to an allocating private helper --
    def _check_callee_alloc(self, node: ast.Call) -> None:
        caller = self._fn_stack[-1] if self._fn_stack else None
        if caller is None:
            return
        callee = self.index.resolve_call(caller, node)
        if callee is None or callee.is_public or callee.path != caller.path:
            return
        hit = _unconditional_alloc(self.index, callee)
        if hit is None:
            return
        alloc_fn, alloc_call = hit
        self.findings.append(
            make_finding(
                "R5",
                self.ctx.path,
                node.lineno,
                f"call to {callee.label} inside a loop allocates on every "
                f"iteration ({unparse(alloc_call.func)}(...) at "
                f"{alloc_fn.path}:{alloc_call.lineno}): hoist the buffer "
                "or move it into the per-operator cache",
            )
        )


def _allocs_outside_own_loops(fn: FunctionInfo) -> ast.Call | None:
    """First allocation in *fn*'s own body not guarded by one of *fn*'s
    loops (and not inside a nested def)."""

    for stmt in fn.node.body:
        for n in ast.walk(stmt):
            if isinstance(n, ast.Call) and _is_alloc(n.func):
                if not _under_loop_or_def(stmt, n):
                    return n
    return None


def _under_loop_or_def(root: ast.stmt, target: ast.Call) -> bool:
    """Whether *target* sits under a loop or nested def within *root*."""

    def descend(node: ast.AST, guarded: bool) -> bool | None:
        if node is target:
            return guarded
        g = guarded or isinstance(
            node,
            (ast.For, ast.AsyncFor, ast.While,
             ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda),
        )
        for child in ast.iter_child_nodes(node):
            hit = descend(child, g)
            if hit is not None:
                return hit
        return None

    return bool(descend(root, False))


def _unconditional_alloc(
    index: ProjectIndex, callee: FunctionInfo
) -> tuple[FunctionInfo, ast.Call] | None:
    """An allocation *callee* performs on every call: in its own body
    outside its own loops, or likewise in a private same-module helper it
    calls, followed transitively.  Nested-def bodies are excluded — a
    closure minted by the callee only allocates when *it* is later
    called, which is its own R5 story."""
    seen: set[int] = set()
    stack = [callee]
    while stack:
        fn = stack.pop()
        if id(fn) in seen:
            continue
        seen.add(id(fn))
        alloc = _allocs_outside_own_loops(fn)
        if alloc is not None:
            return fn, alloc
        for call in fn.calls:
            if _under_loop_or_def_in_fn(fn, call):
                continue
            nxt = index.resolve_call(fn, call)
            if (
                nxt is not None
                and not nxt.is_public
                and nxt.path == callee.path
                and nxt.parent is None
            ):
                stack.append(nxt)
    return None


def _under_loop_or_def_in_fn(fn: FunctionInfo, call: ast.Call) -> bool:
    for stmt in fn.node.body:
        for n in ast.walk(stmt):
            if n is call:
                return _under_loop_or_def(stmt, call)
    return True  # not found in own body => inside a nested def


def check_hot_loop_alloc(
    ctx: ModuleContext, index: ProjectIndex
) -> list[Finding]:
    if not ctx.in_hot_loop_scope():
        return []
    visitor = _LoopAllocVisitor(ctx, index)
    visitor.visit(ctx.tree)
    return visitor.findings
