"""CLI: ``python -m repro.lint [paths] [options]``.

Exit status: 0 clean (advisories allowed), 1 on unsuppressed,
unbaselined error findings (or warnings under ``--strict``), 2 on usage
errors.  ``--write-baseline`` records the current findings and exits 0.

``--changed`` scopes *reporting* to files touched per git (diff against
HEAD plus untracked), for fast pre-commit runs; the full tree is still
parsed and indexed whenever an interprocedural rule is active, so call
edges into unchanged files resolve exactly as on a full run.

``--prune-baseline`` drops baseline entries whose finding no longer
exists (fixed, suppressed inline, or the file is gone) and rewrites the
baseline file.  ``--write-baseline`` deliberately does *not* prune — it
records, pruning stays an explicit decision.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

from repro.lint.baseline import Baseline
from repro.lint.engine import iter_python_files, lint_paths
from repro.lint.reporter import render_json, render_sarif, render_text

DEFAULT_BASELINE = "lint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Repo-specific static analysis for the AmgT reproduction "
        "(dtype-flow, scatter-ban, constant-provenance, contract-hook "
        "coverage, hot-loop allocations, workspace aliasing/escape "
        "provenance, stale closure capture).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--sarif-out", default=None, metavar="FILE",
        help="additionally write a SARIF 2.1.0 log to FILE "
        "(independent of --format)",
    )
    parser.add_argument(
        "--select", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore", default=None,
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--changed", action="store_true",
        help="report findings only for files changed per git (diff "
        "against HEAD + untracked); the full tree is still indexed "
        "when interprocedural rules are active",
    )
    parser.add_argument(
        "--baseline", default=None,
        help=f"baseline file (default: ./{DEFAULT_BASELINE} when present)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="record current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--prune-baseline", action="store_true",
        help="drop baseline entries whose finding no longer exists, "
        "rewrite the baseline file, and exit 0",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="treat warnings as failures too",
    )
    return parser


def _split(arg: str | None) -> list[str] | None:
    if arg is None:
        return None
    return [part.strip() for part in arg.split(",") if part.strip()]


def _git_changed_files() -> set[Path] | None:
    """Resolved paths of files changed per git, or None when git fails.

    git prints paths relative to the repo toplevel regardless of cwd, so
    everything is resolved against it before comparing with the
    requested files (which may be absolute or cwd-relative).
    """
    try:
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True, text=True, timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if top.returncode != 0:
        return None
    root = Path(top.stdout.strip())
    changed: set[Path] = set()
    for cmd in (
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(
                cmd, capture_output=True, text=True, timeout=30
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        if proc.returncode != 0:
            return None
        changed.update(
            (root / line.strip()).resolve()
            for line in proc.stdout.splitlines()
            if line.strip()
        )
    return changed


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    baseline_path = (
        Path(args.baseline) if args.baseline else Path(DEFAULT_BASELINE)
    )
    baseline = None
    if not args.no_baseline and not args.write_baseline:
        if baseline_path.exists():
            try:
                baseline = Baseline.load(baseline_path)
            except (ValueError, OSError) as exc:
                print(
                    f"repro.lint: cannot read baseline: {exc}",
                    file=sys.stderr,
                )
                return 2

    report_on: set[str] | None = None
    if args.changed:
        changed = _git_changed_files()
        if changed is None:
            print(
                "repro.lint: --changed: git unavailable, "
                "falling back to a full run",
                file=sys.stderr,
            )
        else:
            try:
                requested = iter_python_files(args.paths)
            except FileNotFoundError as exc:
                print(f"repro.lint: {exc}", file=sys.stderr)
                return 2
            report_on = {
                p.as_posix()
                for p in requested
                if p.resolve() in changed
            }

    try:
        result = lint_paths(
            args.paths,
            select=_split(args.select),
            ignore=_split(args.ignore),
            baseline=baseline,
            report_on=report_on,
        )
    except (FileNotFoundError, ValueError) as exc:
        print(f"repro.lint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        Baseline.from_findings(result.findings, result.sources).save(
            baseline_path
        )
        print(
            f"repro.lint: wrote {len(result.findings)} finding(s) to "
            f"{baseline_path}"
        )
        return 0

    if args.prune_baseline:
        if baseline is None:
            print(
                "repro.lint: --prune-baseline: no baseline loaded",
                file=sys.stderr,
            )
            return 2
        if report_on is not None:
            print(
                "repro.lint: --prune-baseline needs a full run, "
                "not --changed",
                file=sys.stderr,
            )
            return 2
        baseline.pruned(result.stale_baseline).save(baseline_path)
        print(
            f"repro.lint: pruned {len(result.stale_baseline)} stale "
            f"entr{'y' if len(result.stale_baseline) == 1 else 'ies'} "
            f"from {baseline_path}"
        )
        return 0

    if args.sarif_out:
        Path(args.sarif_out).write_text(
            render_sarif(result) + "\n", encoding="utf-8"
        )

    if args.format == "json":
        report = render_json(result)
    elif args.format == "sarif":
        report = render_sarif(result)
    else:
        report = render_text(result)
    print(report)
    return result.exit_code(strict=args.strict)


if __name__ == "__main__":
    sys.exit(main())
