"""CLI: ``python -m repro.lint [paths] [options]``.

Exit status: 0 clean (advisories allowed), 1 on unsuppressed,
unbaselined error findings (or warnings under ``--strict``), 2 on usage
errors.  ``--write-baseline`` records the current findings and exits 0.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.lint.baseline import Baseline
from repro.lint.engine import lint_paths
from repro.lint.reporter import render_json, render_text

DEFAULT_BASELINE = "lint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Repo-specific static analysis for the AmgT reproduction "
        "(dtype-flow, scatter-ban, constant-provenance, contract-hook "
        "coverage, hot-loop allocations).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore", default=None,
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--baseline", default=None,
        help=f"baseline file (default: ./{DEFAULT_BASELINE} when present)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="record current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="treat warnings as failures too",
    )
    return parser


def _split(arg: str | None) -> list[str] | None:
    if arg is None:
        return None
    return [part.strip() for part in arg.split(",") if part.strip()]


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    baseline_path = Path(args.baseline) if args.baseline else Path(DEFAULT_BASELINE)
    baseline = None
    if not args.no_baseline and not args.write_baseline:
        if baseline_path.exists():
            try:
                baseline = Baseline.load(baseline_path)
            except (ValueError, OSError) as exc:
                print(f"repro.lint: cannot read baseline: {exc}", file=sys.stderr)
                return 2

    try:
        result = lint_paths(
            args.paths,
            select=_split(args.select),
            ignore=_split(args.ignore),
            baseline=baseline,
        )
    except (FileNotFoundError, ValueError) as exc:
        print(f"repro.lint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        Baseline.from_findings(result.findings, result.sources).save(baseline_path)
        print(
            f"repro.lint: wrote {len(result.findings)} finding(s) to "
            f"{baseline_path}"
        )
        return 0

    report = render_json(result) if args.format == "json" else render_text(result)
    print(report)
    return result.exit_code(strict=args.strict)


if __name__ == "__main__":
    sys.exit(main())
