"""Baseline file: grandfathered findings that do not fail the run.

The baseline lets a new rule land before every historical finding is
fixed: ``--write-baseline`` records the current findings, subsequent
runs subtract them, and only *new* findings affect the exit status.
Entries are content-addressed — rule id, repo path, and the stripped
source line text, plus an occurrence index so two identical lines in one
file stay distinct — which keeps them stable across unrelated edits
that shift line numbers.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.lint.finding import Finding

_VERSION = 1


def _portable_path(path: str) -> str:
    """Anchor *path* at the innermost ``repro`` package component.

    Fingerprints must agree whether the tree was linted as ``src/repro``
    from the repo root or via an absolute path; anchoring at the package
    directory makes them invocation-independent.
    """
    parts = path.split("/")
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i:])
    return path


def _fingerprint(finding: Finding, line_text: str, occurrence: int) -> str:
    payload = "\x1f".join(
        (finding.rule, _portable_path(finding.path), line_text.strip(), str(occurrence))
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _line_text(sources: dict[str, list[str]], finding: Finding) -> str:
    lines = sources.get(finding.path, [])
    if 1 <= finding.line <= len(lines):
        return lines[finding.line - 1]
    return ""


def fingerprints(
    findings: list[Finding], sources: dict[str, list[str]]
) -> list[tuple[Finding, str]]:
    """Pair each finding with its stable fingerprint."""
    seen: dict[tuple[str, str, str], int] = {}
    out: list[tuple[Finding, str]] = []
    for f in sorted(findings, key=Finding.sort_key):
        text = _line_text(sources, f)
        key = (f.rule, f.path, text.strip())
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        out.append((f, _fingerprint(f, text, occurrence)))
    return out


class Baseline:
    """Set of accepted finding fingerprints, persisted as JSON."""

    def __init__(self, entries: dict[str, dict] | None = None) -> None:
        self.entries: dict[str, dict] = entries or {}

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("version") != _VERSION:
            raise ValueError(
                f"baseline {path} has version {data.get('version')!r}, "
                f"expected {_VERSION}"
            )
        return cls(entries=data.get("entries", {}))

    def save(self, path: Path) -> None:
        payload = {"version": _VERSION, "entries": self.entries}
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    @classmethod
    def from_findings(
        cls, findings: list[Finding], sources: dict[str, list[str]]
    ) -> "Baseline":
        entries: dict[str, dict] = {}
        for f, fp in fingerprints(findings, sources):
            entries[fp] = {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "message": f.message,
            }
        return cls(entries=entries)

    def filter(
        self, findings: list[Finding], sources: dict[str, list[str]]
    ) -> list[Finding]:
        """Findings not covered by the baseline."""
        if not self.entries:
            return findings
        return [
            f
            for f, fp in fingerprints(findings, sources)
            if fp not in self.entries
        ]

    def stale_entries(
        self, findings: list[Finding], sources: dict[str, list[str]]
    ) -> dict[str, dict]:
        """Entries whose finding no longer exists: fp -> stored entry.

        An entry is stale when this (full-tree) run did not reproduce its
        fingerprint *and* the run actually looked where the finding
        lived: either the entry's file was among the linted sources (the
        finding was fixed) or no linted source matches it at all (the
        file was deleted or moved).  Fingerprints of suppressed findings
        are not reproduced either — that is by design: a finding that
        gained an inline suppression no longer needs its baseline entry.
        """
        if not self.entries:
            return {}
        current = {fp for _, fp in fingerprints(findings, sources)}
        portable_sources = {_portable_path(p) for p in sources}
        stale: dict[str, dict] = {}
        for fp, entry in self.entries.items():
            if fp in current:
                continue
            entry_path = _portable_path(str(entry.get("path", "")))
            covered = entry_path in portable_sources
            if covered or not Path(str(entry.get("path", ""))).exists():
                stale[fp] = entry
        return stale

    def pruned(self, stale: dict[str, dict]) -> "Baseline":
        """A copy of this baseline without the *stale* entries."""
        return Baseline(
            entries={
                fp: e for fp, e in self.entries.items() if fp not in stale
            }
        )
