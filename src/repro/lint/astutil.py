"""Small AST helpers shared by the lint rules."""

from __future__ import annotations

import ast

#: Names numpy is imported under across the repo.
NUMPY_ALIASES = ("np", "numpy")

#: Attribute names that denote the two reduced precisions, in both the
#: ``np.float32`` and the ``Precision``-free string spellings.
LOW_PRECISION_NAMES = ("float16", "float32", "half", "single")


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for Name/Attribute chains, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def is_numpy_attr(node: ast.AST, *attrs: str) -> bool:
    """True for ``np.<attr>`` / ``numpy.<attr>`` with attr in *attrs*."""
    name = dotted_name(node)
    if name is None:
        return False
    head, _, tail = name.partition(".")
    return head in NUMPY_ALIASES and tail in attrs


def is_low_precision_dtype(node: ast.AST) -> bool:
    """``np.float16`` / ``np.float32`` / ``'float16'`` / ``'float32'``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value in LOW_PRECISION_NAMES
    return is_numpy_attr(node, *LOW_PRECISION_NAMES)

def is_float64_dtype(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value in ("float64", "double")
    return is_numpy_attr(node, "float64", "double")


def call_keyword(call: ast.Call, name: str) -> ast.expr | None:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def unparse(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - defensive
        return "<unprintable>"


def toplevel_functions(tree: ast.Module):
    """Module-level (and single-class-method) function defs."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
        elif isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield sub
