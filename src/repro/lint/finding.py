"""Findings, severities and the rule registry of the ``repro.lint`` pass.

The analyzer is deliberately repo-specific: its rules encode invariants of
*this* reproduction (the FP64/FP32/FP16 level policy, the segmented-
reduction engine, the paper's tile constants, the runtime contract hooks)
rather than generic style.  Each rule has a stable id (``R1``..``R10``,
plus ``R0`` for problems with the lint machinery itself) used in
suppression comments and baseline entries.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How a finding affects the exit status.

    * ``ERROR`` — fails the run (exit 1) unless suppressed or baselined.
    * ``WARNING`` — reported; fails only under ``--strict``.
    * ``ADVISORY`` — reported; never fails the run.  Used for
      cache-candidate / perf findings that need human judgement.
    """

    ERROR = "error"
    WARNING = "warning"
    ADVISORY = "advisory"


@dataclass(frozen=True)
class Rule:
    """One analyzer rule: id, human name, default severity."""

    id: str
    name: str
    severity: Severity
    description: str


#: The registry, keyed by rule id.  Order is the reporting order.
RULES: dict[str, Rule] = {
    r.id: r
    for r in (
        Rule(
            "R0",
            "lint-integrity",
            Severity.ERROR,
            "Problems with the lint pass itself: unparsable files, malformed "
            "suppression comments, suppressions without a justification.",
        ),
        Rule(
            "R1",
            "dtype-flow",
            Severity.ERROR,
            "Numpy expressions that can silently change precision across the "
            "FP64/FP32/FP16 level policy: low-precision arrays mixed with "
            "Python float scalars, silent widening astype without casting=, "
            "solve-phase accumulators not created via the "
            "repro.amg.precision helpers.",
        ),
        Rule(
            "R2",
            "scatter-ban",
            Severity.ERROR,
            "Unbuffered ufunc scatters (np.add.at / np.bitwise_or.at / "
            "np.maximum.at ...) outside util/segops.py.  All scatters must "
            "go through the bit-identical segmented-reduction engine.",
        ),
        Rule(
            "R3",
            "constant-provenance",
            Severity.ERROR,
            "Numeric literals shadowing the paper's named constants "
            "(TC_NNZ_THRESHOLD, BLOCK_SIZE, TILE_SLOTS, VARIATION_THRESHOLD, "
            "the 8x8x4 MMA fragment shape) instead of importing them.",
        ),
        Rule(
            "R4",
            "contract-hook",
            Severity.ERROR,
            "Public kernel entry points in kernels/ that build a "
            "KernelRecord but never consult the repro.check runtime hook, "
            "leaving checked mode non-exhaustive.",
        ),
        Rule(
            "R5",
            "hot-loop-alloc",
            Severity.ADVISORY,
            "np.zeros / np.empty / np.concatenate inside loops in kernels/ "
            "and formats/: candidates for the per-operator cache.",
        ),
        Rule(
            "R6",
            "root-span",
            Severity.ADVISORY,
            "Public solver entry points (setup/solve/precondition and the "
            "Krylov drivers) that never open a repro.obs span: traced runs "
            "(REPRO_TRACE=1) would record nothing for this phase.",
        ),
        Rule(
            "R7",
            "workspace-aliasing",
            Severity.ERROR,
            "Tape workspace slots written twice with no intervening read "
            "ordering (dead store: one op's output is silently discarded), "
            "or out= aliasing a read operand of a kernel not documented "
            "alias-safe (non-elementwise kernels may read elements the "
            "aliased write already overwrote).",
        ),
        Rule(
            "R8",
            "escaping-view",
            Severity.ERROR,
            "A public function or closure returning or storing a Workspace "
            "slot, a view of one, or a binding-owned reused buffer, without "
            ".copy().  The PR 6 tape contract — results are always copies — "
            "checked at parse time via interprocedural provenance.",
        ),
        Rule(
            "R9",
            "stale-closure-capture",
            Severity.WARNING,
            "A def/lambda minted inside a loop that reads a loop-carried "
            "name by reference: every closure sees the last iteration's "
            "value at call time.  Bind through a factory function (the "
            "tape/recorder.py convention) or a default argument.",
        ),
        Rule(
            "R10",
            "metric-name-provenance",
            Severity.ERROR,
            "A string-literal metric name passed to the repro.obs metrics "
            "API (inc/set_gauge/observe/observe_counts or a registry's "
            "counter/gauge/histogram/value/total) outside obs/names.py. "
            "Metric names have one home: rename the constant and a "
            "re-typed literal silently forks the series.",
        ),
    )
}


@dataclass(frozen=True)
class Finding:
    """One reported issue, anchored to a file and line."""

    rule: str
    path: str
    line: int
    message: str
    severity: Severity = field(compare=False, default=Severity.ERROR)

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.rule, self.message)

    def format_text(self) -> str:
        return (
            f"{self.path}:{self.line}: {self.rule}[{RULES[self.rule].name}] "
            f"{self.severity.value}: {self.message}"
        )

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "name": RULES[self.rule].name,
            "path": self.path,
            "line": self.line,
            "severity": self.severity.value,
            "message": self.message,
        }


def make_finding(rule_id: str, path: str, line: int, message: str) -> Finding:
    """Build a finding with the rule's registry severity."""
    return Finding(
        rule=rule_id,
        path=path,
        line=line,
        message=message,
        severity=RULES[rule_id].severity,
    )
