"""HYPRE-style integration layer (Sec. IV.F).

The paper incorporates AmgT into HYPRE by adding the mBSR arrays (prefix
``AmgT_mBSR_``) to ``hypre_CSRMatrix`` and routing
``hypre_CSRMatrixMultiplyDevice`` / ``hypre_CSRMatrixMatvecDevice2``
through the AmgT kernels after an ``AmgT_CSR2mBSR`` conversion.  This
package mirrors that structure:

* :class:`repro.hypre.csr_matrix.HypreCSRMatrix` — a CSR matrix that can
  lazily carry its mBSR twin;
* :mod:`repro.hypre.backends` — the kernel backends: ``hypre`` (vendor
  CSR kernels, the baseline) and ``amgt`` (mBSR tensor-core kernels, FP64
  or mixed precision);
* :class:`repro.hypre.boomeramg.BoomerAMG` — the AMG driver that plays the
  role of BoomerAMG: it runs the shared setup/solve algorithms while every
  SpGEMM/SpMV goes through the chosen backend, recording the Fig. 6 format
  conversions and per-call simulated timings.
"""

from repro.hypre.csr_matrix import HypreCSRMatrix
from repro.hypre.backends import KernelBackend, HypreBackend, AmgTBackend, make_backend
from repro.hypre.boomeramg import BoomerAMG

__all__ = [
    "HypreCSRMatrix",
    "KernelBackend",
    "HypreBackend",
    "AmgTBackend",
    "make_backend",
    "BoomerAMG",
]
