"""Kernel backends: the baseline HYPRE path and the AmgT path.

A backend owns a device, a cost model and a precision schedule, and
exposes the two device entry points of the HYPRE integration:

* :meth:`KernelBackend.matmul_device` — ``hypre_CSRMatrixMultiplyDevice``;
* :meth:`KernelBackend.matvec_device` — ``hypre_CSRMatrixMatvecDevice2``.

Both append priced :class:`~repro.kernels.record.KernelRecord` entries to
the supplied :class:`~repro.perf.timeline.PerformanceLog`.

:class:`HypreBackend` calls the vendor-style CSR kernels (cuSPARSE on
NVIDIA devices, rocSPARSE on AMD) in FP64 — the paper's baseline.

:class:`AmgTBackend` implements the Fig. 6 data flow: operands are
converted to mBSR once (conversion cost recorded on first touch), kernels
run at the per-level precision of the schedule, and MI210's incompatible
matrix-core shapes force the CUDA-core paths (Sec. V.F).

Host-side, every per-operator invariant the kernels need — the SpMV plan,
the quantised/widened tile arrays of each precision, tile popcounts —
lives in the wrapped matrix's :class:`~repro.kernels.cache.OperatorCache`
and is computed once per operator, mirroring the paper's
"preprocessing once per matrix, reused for every SpMV".
"""

from __future__ import annotations

import numpy as np

from repro.formats.bitmap import BLOCK_SIZE
from repro.gpu.cost import CostModel
from repro.gpu.counters import Precision
from repro.gpu.specs import DeviceSpec
from repro.hypre.csr_matrix import HypreCSRMatrix
from repro.kernels.baseline import csr_spgemm, csr_spmv
from repro.kernels.record import KernelRecord
from repro.kernels.spgemm import mbsr_spgemm
from repro.kernels.spmv import mbsr_spmv
from repro.amg.precision import PrecisionSchedule
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.perf.timeline import PerformanceLog

__all__ = [
    "KernelBackend",
    "HypreBackend",
    "AmgTBackend",
    "AmgTPatcher",
    "make_backend",
]


def _kernel_span(name: str, phase: str, level: int):
    """Open a ``kind='kernel'`` span around real kernel work (gated)."""
    if obs_trace.is_active():
        return obs_trace.TRACER.open(
            name, "kernel", {"phase": phase, "level": level}
        )
    return obs_trace.NULL_SPAN


def _finish_record(sp, rec: KernelRecord) -> None:
    """Stamp the priced record's facts onto its span and fold it into the
    metrics registry.  ``sp`` may already be closed — attrs stay mutable."""
    if sp:
        sp.set(
            sim_us=rec.sim_time_us,
            backend=rec.backend,
            precision=rec.precision.name.lower(),
            path=rec.detail.get("path"),
        )
    obs_metrics.observe_kernel(rec)


class KernelBackend:
    """Common machinery of the two backends."""

    name: str = "abstract"

    def __init__(self, device: DeviceSpec, schedule: PrecisionSchedule):
        self.device = device
        self.cost = CostModel(device)
        self.schedule = schedule

    # -- interface ------------------------------------------------------
    def matmul_device(
        self,
        a: HypreCSRMatrix,
        b: HypreCSRMatrix,
        perf: PerformanceLog,
        phase: str,
        level: int,
        *,
        is_rap_result: bool = False,
    ) -> HypreCSRMatrix:
        raise NotImplementedError

    def matvec_device(
        self,
        a: HypreCSRMatrix,
        x: np.ndarray,
        perf: PerformanceLog,
        phase: str,
        level: int,
    ) -> np.ndarray:
        raise NotImplementedError

    def bind_matvec(
        self,
        a: HypreCSRMatrix,
        perf: PerformanceLog,
        phase: str,
        level: int,
    ):
        """Resolve one operator's SpMV into a replayable binding.

        The record-time half of the kernel tape (:mod:`repro.tape`):
        returns a :class:`~repro.kernels.spmv.SpMVBinding` whose
        ``run(x)`` is bit-identical to :meth:`matvec_device` (minus the
        per-call perf/obs bookkeeping) and whose ``record`` is already
        stamped and priced for this phase/level, so replays can replicate
        the perf log in bulk.  Any format conversion is charged here, as
        the first interpreted call would have.
        """
        raise NotImplementedError

    def bind_matmat(
        self,
        a: HypreCSRMatrix,
        perf: PerformanceLog,
        phase: str,
        level: int,
        width: int,
    ):
        """Resolve one operator's blocked SpMM into a replayable binding.

        The batched twin of :meth:`bind_matvec`: returns a
        :class:`~repro.kernels.spmv.SpMMBinding` whose ``run`` maps a
        ``(width, ncols)`` row panel to a fresh float64
        ``(width, nrows)`` panel, row j bit-identical to the width-1
        binding on that row, and whose priced ``record`` charges matrix
        bytes once per panel call but MMA issues/flops per column —
        the arithmetic-intensity rise the batch path exists for.
        """
        raise NotImplementedError

    def galerkin_plan(self, r, a, p, perf, phase, level, on_result=None):
        """Fused RAP plan, or None when the backend has no setup engine
        (the baseline runs the plain two-call Galerkin path)."""
        return None

    def hierarchy_patcher(self, reuse, perf, phase: str = "setup"):
        """Dirty-row patch engine for incremental re-setups, or None when
        the backend has no block format — the setup driver then uses the
        row-local CSR patcher built on the setup's SpGEMM callable (see
        :class:`repro.amg.patch.CSRPatcher`)."""
        return None

    # -- shared helpers ---------------------------------------------------
    def record_other(
        self,
        perf: PerformanceLog,
        phase: str,
        level: int,
        name: str,
        *,
        bytes_moved: float,
        flops: float = 0.0,
        launches: int = 1,
    ) -> KernelRecord:
        """Charge non-kernel AMG work (coarsening, vector ops, ...)."""
        rec = KernelRecord(kernel=name, backend=self.name, precision=Precision.FP64)
        rec.counters.add_bytes(read=bytes_moved * 0.6, written=bytes_moved * 0.4)
        rec.counters.add_flops(Precision.FP64, flops)
        rec.counters.launches = launches
        rec.phase, rec.level = phase, level
        rec.price(self.cost, "generic")
        perf.append(rec)
        obs_metrics.observe_kernel(rec)
        return rec


class HypreBackend(KernelBackend):
    """The baseline: HYPRE calling vendor CSR kernels in FP64."""

    def __init__(self, device: DeviceSpec):
        super().__init__(device, PrecisionSchedule.uniform(Precision.FP64))
        self.vendor = "cusparse" if device.vendor == "NVIDIA" else "rocsparse"
        self.name = "hypre"

    def matmul_device(self, a, b, perf, phase, level, *, is_rap_result=False):
        a = HypreCSRMatrix.wrap(a)
        b = HypreCSRMatrix.wrap(b)
        sp = _kernel_span("spgemm", phase, level)
        with sp:
            c, rec = csr_spgemm(a.csr, b.csr, Precision.FP64, backend=self.vendor)
        rec.phase, rec.level = phase, level
        rec.price(self.cost)
        perf.append(rec)
        _finish_record(sp, rec)
        return HypreCSRMatrix(csr=c)

    def matvec_device(self, a, x, perf, phase, level):
        a = HypreCSRMatrix.wrap(a)
        sp = _kernel_span("spmv", phase, level)
        with sp:
            y, rec = csr_spmv(a.csr, x, Precision.FP64, backend=self.vendor)
        rec.phase, rec.level = phase, level
        rec.price(self.cost)
        perf.append(rec)
        _finish_record(sp, rec)
        return np.asarray(y, dtype=np.float64)

    def bind_matvec(self, a, perf, phase, level):
        from repro.kernels.baseline import bind_csr_spmv

        a = HypreCSRMatrix.wrap(a)
        binding = bind_csr_spmv(a.csr, Precision.FP64, backend=self.vendor)
        rec = binding.record
        rec.phase, rec.level = phase, level
        rec.price(self.cost)
        return binding

    def bind_matmat(self, a, perf, phase, level, width):
        from repro.kernels.baseline import bind_csr_spmm

        a = HypreCSRMatrix.wrap(a)
        binding = bind_csr_spmm(a.csr, width, Precision.FP64,
                                backend=self.vendor)
        rec = binding.record
        rec.phase, rec.level = phase, level
        rec.price(self.cost)
        return binding


class AmgTBackend(KernelBackend):
    """The AmgT path: mBSR kernels on tensor + CUDA cores."""

    def __init__(self, device: DeviceSpec, precision: str = "fp64"):
        if precision == "mixed":
            schedule = PrecisionSchedule.mixed(device)
        elif precision == "fp64":
            schedule = PrecisionSchedule.uniform(Precision.FP64)
        else:
            raise ValueError(f"unknown precision mode {precision!r}")
        super().__init__(device, schedule)
        self.name = "amgt"
        self.precision_mode = precision
        #: Matrix-core availability decides the kernels' core selection.
        self.allow_tensor_cores = device.mma_shape_compatible
        #: Devices without a usable low-precision data path (MI210) compute
        #: coarse levels in FP32 but keep the matrices FP64-resident, so
        #: the kernels are charged FP64 memory traffic — which is why the
        #: paper finds AmgT (FP64) and AmgT (Mixed) nearly identical there.
        self.storage_itemsize = None if device.fp16_supported else 8
        #: Setup-phase engine: pattern-keyed SpGEMM plans, fused RAP plans
        #: and conversion templates, shared across every setup this
        #: backend runs (the alpha-Setup / SPGEMM_REUSE scenario).
        from repro.kernels.setup_cache import SetupPlanCache

        self.setup_cache = SetupPlanCache()

    # -- conversions ------------------------------------------------------
    def _ensure_mbsr(self, mat: HypreCSRMatrix, perf, phase, level):
        """AmgT_CSR2mBSR with one-time cost recording (unified format)."""
        if mat.setup_cache is None:
            mat.setup_cache = self.setup_cache
        sp = _kernel_span("csr2mbsr", phase, level)
        with sp:
            mbsr, stats = mat.amgt_csr2mbsr()
        if stats is not None:
            rec = KernelRecord(kernel="csr2mbsr", backend=self.name,
                               precision=Precision.FP64)
            rec.counters.add_bytes(read=stats.bytes_read, written=stats.bytes_written)
            rec.counters.launches = 2  # analysis + fill, as in cuSPARSE csr2bsr
            rec.phase, rec.level = phase, level
            rec.price(self.cost, "amgt_convert")
            perf.append(rec)
            _finish_record(sp, rec)
        elif sp:
            sp.set(cached=True)
        return mbsr

    def _record_mbsr2csr(self, result: HypreCSRMatrix, perf, phase, level):

        mbsr = result.mbsr
        itemsize = 8
        rec = KernelRecord(kernel="mbsr2csr", backend=self.name, precision=Precision.FP64)
        rec.counters.add_bytes(
            read=mbsr.blc_num * (16 * itemsize + 8 + 2),
            written=result.csr.nnz * (itemsize + 8) + (result.csr.nrows + 1) * 8,
        )
        rec.counters.launches = 2
        rec.phase, rec.level = phase, level
        rec.price(self.cost, "amgt_convert")
        perf.append(rec)
        obs_metrics.observe_kernel(rec)

    # -- kernels ----------------------------------------------------------
    def matmul_device(self, a, b, perf, phase, level, *, is_rap_result=False):
        a = HypreCSRMatrix.wrap(a)
        b = HypreCSRMatrix.wrap(b)
        am = self._ensure_mbsr(a, perf, phase, level)
        bm = self._ensure_mbsr(b, perf, phase, level)
        prec = self.schedule.for_level(level)
        am = a.mbsr_at_precision(prec)
        bm = b.mbsr_at_precision(prec)
        sp = _kernel_span("spgemm", phase, level)
        with sp:
            cm, rec = mbsr_spgemm(am, bm, prec, out_dtype=np.float64,
                                  storage_itemsize=self.storage_itemsize,
                                  plan_cache=self.setup_cache)
        self._reprice_mma(rec, prec)
        rec.phase, rec.level = phase, level
        rec.price(self.cost)
        perf.append(rec)
        _finish_record(sp, rec)
        # The product is born in mBSR; the CSR twin is derived for the CSR
        # components.  Only RAP results pay a recorded MBSR2CSR (Fig. 6
        # step 5); other products stay on the device in mBSR.
        csp = _kernel_span("mbsr2csr", phase, level)
        with csp:
            csr = self.setup_cache.mbsr2csr(cm).eliminate_zeros(0.0)
            out = HypreCSRMatrix(csr=csr, setup_cache=self.setup_cache)
            # Cache an exactly-consistent mBSR twin (structure of csr).
            out.amgt_csr2mbsr()
            out.conversion_stats = None
        if is_rap_result:
            self._record_mbsr2csr(out, perf, phase, level)
        return out

    def _reprice_mma(self, rec: KernelRecord, prec: Precision) -> None:
        """MI210: the fragment shapes do not fit the matrix cores, so the
        warp-level pairs execute on scalar cores instead; reprice the MMA
        issues as scalar tile products (2*4*4*4 flops each)."""
        if not self.allow_tensor_cores and rec.detail.get("tc_pairs"):
            mma = rec.counters.mma_issues[prec]
            rec.counters.mma_issues[prec] = 0.0
            rec.counters.add_flops(prec, mma * 2 * 2 * 64.0)

    def hierarchy_patcher(self, reuse, perf, phase: str = "setup"):
        """Block-aligned mBSR patch engine over the spliced plan cache."""
        return AmgTPatcher(self, reuse, perf, phase)

    def galerkin_plan(
        self,
        r: HypreCSRMatrix,
        a: HypreCSRMatrix,
        p: HypreCSRMatrix,
        perf: PerformanceLog,
        phase: str,
        level: int,
        on_result=None,
    ) -> "_BackendGalerkinPlan":
        """Fused RAP plan for :func:`repro.amg.galerkin.galerkin_product`.

        The returned object replays ``R @ A @ P`` as two numeric-only
        passes against the pattern-keyed plan cache, skipping both
        symbolic phases and the intermediate's CSR round-trip.  The
        perf/pricing treatment matches :meth:`matmul_device` call for
        call: two ``spgemm`` records plus the RAP's MBSR2CSR record.
        """
        return _BackendGalerkinPlan(self, r, a, p, perf, phase, level,
                                    on_result)

    def matvec_device(self, a, x, perf, phase, level):
        a = HypreCSRMatrix.wrap(a)
        self._ensure_mbsr(a, perf, phase, level)
        prec = self.schedule.for_level(level)
        am = a.mbsr_at_precision(prec)
        plan = a.spmv_plan(self.allow_tensor_cores)
        sp = _kernel_span("spmv", phase, level)
        with sp:
            y, rec = mbsr_spmv(am, np.asarray(x, dtype=np.float64), prec, plan,
                               allow_tensor_cores=self.allow_tensor_cores,
                               storage_itemsize=self.storage_itemsize)
        rec.phase, rec.level = phase, level
        rec.price(self.cost)
        perf.append(rec)
        _finish_record(sp, rec)
        return np.asarray(y, dtype=np.float64)

    def bind_matvec(self, a, perf, phase, level):
        a = HypreCSRMatrix.wrap(a)
        self._ensure_mbsr(a, perf, phase, level)
        prec = self.schedule.for_level(level)
        am = a.mbsr_at_precision(prec)
        # The memoised binding freezes plan, casts and index arrays; its
        # numeric result never depends on the plan, so sharing the
        # cast-matrix cache's plan (structurally identical to the
        # canonical one matvec_device consults) is exact.
        binding = am.cache.spmv_binding(
            prec,
            allow_tensor_cores=self.allow_tensor_cores,
            storage_itemsize=self.storage_itemsize,
        )
        rec = binding.record
        rec.phase, rec.level = phase, level
        rec.price(self.cost)
        return binding

    def bind_matmat(self, a, perf, phase, level, width):
        a = HypreCSRMatrix.wrap(a)
        self._ensure_mbsr(a, perf, phase, level)
        prec = self.schedule.for_level(level)
        am = a.mbsr_at_precision(prec)
        binding = am.cache.spmm_binding(
            prec,
            width,
            allow_tensor_cores=self.allow_tensor_cores,
            storage_itemsize=self.storage_itemsize,
        )
        rec = binding.record
        rec.phase, rec.level = phase, level
        rec.price(self.cost)
        return binding


class _BackendGalerkinPlan:
    """One fused ``R @ A @ P`` through the AmgT backend's plan cache.

    Implements the ``matches`` / ``replay`` protocol of
    :func:`repro.amg.galerkin.galerkin_product`.  ``consumed`` turns True
    once a replay ran, letting the setup driver keep its SpGEMM call
    accounting consistent (the replay never touches the spgemm closure).
    """

    def __init__(self, backend, r, a, p, perf, phase, level, on_result=None):
        self.backend = backend
        self.rw, self.aw, self.pw = r, a, p
        self.perf, self.phase, self.level = perf, phase, level
        self.on_result = on_result
        self.consumed = False

    def matches(self, r, a, p) -> bool:
        return (
            r.pattern_key() == self.rw.csr.pattern_key()
            and a.pattern_key() == self.aw.csr.pattern_key()
            and p.pattern_key() == self.pw.csr.pattern_key()
        )

    def replay(self, r, a, p):
        backend = self.backend
        perf, phase, level = self.perf, self.phase, self.level
        cache = backend.setup_cache
        for w in (self.rw, self.aw, self.pw):
            backend._ensure_mbsr(w, perf, phase, level)
        prec = backend.schedule.for_level(level)
        rm = self.rw.mbsr_at_precision(prec)
        am = self.aw.mbsr_at_precision(prec)
        pm = self.pw.mbsr_at_precision(prec)
        plan, fresh = cache.rap_plan(rm, am, pm)
        sp = _kernel_span("spgemm", phase, level)
        with sp:
            rap_mbsr, records = cache.rap_numeric(
                plan, rm, am, pm, prec, out_dtype=np.float64,
                storage_itemsize=backend.storage_itemsize,
                # A plan built by this very call pays its analysis + symbolic
                # cost here; a cached plan replays numeric-only.
                charge_plan_build=fresh,
            )
        if sp:
            sp.set(fused="rap", plan_reused=not fresh)
        for rec in records:
            backend._reprice_mma(rec, prec)
            rec.phase, rec.level = phase, level
            rec.price(backend.cost)
            perf.append(rec)
            obs_metrics.observe_kernel(rec)
        if sp:
            sp.set(sim_us=sum(rec.sim_time_us for rec in records))
        csp = _kernel_span("mbsr2csr", phase, level)
        with csp:
            csr = cache.mbsr2csr(rap_mbsr).eliminate_zeros(0.0)
            out = HypreCSRMatrix(csr=csr, setup_cache=cache)
            out.amgt_csr2mbsr()
            out.conversion_stats = None
        backend._record_mbsr2csr(out, perf, phase, level)
        if self.on_result is not None:
            self.on_result(out)
        self.consumed = True
        return csr


class AmgTPatcher:
    """Block-aligned incremental patch engine for the AmgT backend.

    Implements the ``interp_rows`` / ``galerkin_rows`` protocol of
    :func:`repro.amg.patch.patched_resetup` in the mBSR domain: products
    replay only the dirty block-rows (each tile bytewise equal to the same
    tile of the full product, so the spliced operators stay bit-identical
    to a cold setup), conversion templates and fused RAP plans are spliced
    through the pattern-keyed :class:`~repro.kernels.setup_cache.\
SetupPlanCache`, and every kernel is priced like its cold counterpart.

    The driver's scalar dirty sets arrive block-expanded (see
    ``repro.amg.patch._expand_blocks``), which is what keeps clean
    block-rows of a spliced plan from referencing operand block-rows whose
    tile lists changed.
    """

    def __init__(self, backend: AmgTBackend, reuse, perf: PerformanceLog,
                 phase: str = "setup"):
        self.backend = backend
        self.reuse = reuse
        self.perf = perf
        self.phase = phase
        #: Wrappers of the operators this patcher touched, keyed by
        #: ``id(csr)``; the driver seeds it with the previous setup's
        #: wrappers (old operands convert template-free) and merges the
        #: patched entries back after the setup.
        self.wrapped: dict[int, HypreCSRMatrix] = {}

    # -- helpers ----------------------------------------------------------
    @staticmethod
    def _valid_scalars(blocks: np.ndarray, nrows: int):
        """Scalar rows of the given block-rows (clipped to the matrix) and
        their positions within the compact 4*len(blocks)-row result."""
        scal = (blocks[:, None] * BLOCK_SIZE
                + np.arange(BLOCK_SIZE, dtype=np.int64)).ravel()
        pos = np.flatnonzero(scal < nrows)
        return scal[pos], pos

    def _price(self, records, level: int) -> None:
        backend = self.backend
        prec = backend.schedule.for_level(level)
        for rec in records:
            backend._reprice_mma(rec, prec)
            rec.phase, rec.level = self.phase, level
            rec.price(backend.cost)
            self.perf.append(rec)
            obs_metrics.observe_kernel(rec)

    def _wrap(self, csr) -> HypreCSRMatrix:
        """Wrapper for an operand of the *cached* hierarchy (mBSR twins
        usually carried over from the setup that built it)."""
        w = self.wrapped.get(id(csr))
        if w is None:
            w = HypreCSRMatrix(csr=csr, setup_cache=self.backend.setup_cache)
            self.wrapped[id(csr)] = w
        if w.setup_cache is None:
            w.setup_cache = self.backend.setup_cache
        return w

    def _patched_wrap(self, csr_new, csr_old, dirty_blocks: np.ndarray,
                      level: int) -> HypreCSRMatrix:
        """Wrapper for a drifted operand, converted through a spliced
        CSR->mBSR template (clean block-rows keep the cached layout)."""
        w = self.wrapped.get(id(csr_new))
        if w is not None and w.mbsr is not None:
            return w
        backend = self.backend
        cache = backend.setup_cache
        w = HypreCSRMatrix(csr=csr_new, setup_cache=cache)
        if csr_new is csr_old:
            backend._ensure_mbsr(w, self.perf, self.phase, level)
        else:
            sp = _kernel_span("csr2mbsr", self.phase, level)
            with sp:
                mbsr, stats, _ = cache.patch_csr2mbsr(
                    csr_new, csr_old.pattern_key(), dirty_blocks
                )
            w.mbsr = mbsr
            w.conversion_stats = stats
            rec = KernelRecord(kernel="csr2mbsr", backend=backend.name,
                               precision=Precision.FP64)
            rec.counters.add_bytes(read=stats.bytes_read,
                                   written=stats.bytes_written)
            rec.counters.launches = 2
            rec.phase, rec.level = self.phase, level
            rec.price(backend.cost, "amgt_convert")
            self.perf.append(rec)
            _finish_record(sp, rec)
        self.wrapped[id(csr_new)] = w
        return w

    def _record_sub_mbsr2csr(self, mbsr, csr, level: int) -> None:
        """Price the dirty rows' MBSR2CSR expansion (Fig. 6 step 5,
        restricted to the replayed block-rows)."""
        backend = self.backend
        rec = KernelRecord(kernel="mbsr2csr", backend=backend.name,
                           precision=Precision.FP64)
        rec.counters.add_bytes(
            read=mbsr.blc_num * (16 * 8 + 8 + 2),
            written=csr.nnz * (8 + 8) + (csr.nrows + 1) * 8,
        )
        rec.counters.launches = 2
        rec.phase, rec.level = self.phase, level
        rec.price(backend.cost, "amgt_convert")
        self.perf.append(rec)
        obs_metrics.observe_kernel(rec)

    # -- patcher protocol -------------------------------------------------
    def interp_rows(self, level, a_op, b_op, fpos):
        """Dirty block-rows of the extended+i product ``a_op @ b_op``.

        The operands are full (their conversions hit the pattern-keyed
        templates after the first patch); only the product is restricted.
        Returns the compact CSR over the covered F positions — every
        block-row's tiles bytewise equal to the full mBSR product's, hence
        every row bit-identical to the cold interpolation's.
        """
        from repro.formats.convert import mbsr_to_csr
        from repro.kernels.spgemm import mbsr_spgemm_rows

        backend = self.backend
        wa = self._wrap(a_op)
        wb = self._wrap(b_op)
        backend._ensure_mbsr(wa, self.perf, self.phase, level)
        backend._ensure_mbsr(wb, self.perf, self.phase, level)
        prec = backend.schedule.for_level(level)
        am = wa.mbsr_at_precision(prec)
        bm = wb.mbsr_at_precision(prec)
        blocks = np.unique(np.asarray(fpos, dtype=np.int64) // 4)
        sp = _kernel_span("spgemm", self.phase, level)
        with sp:
            sub, _, rec = mbsr_spgemm_rows(
                am, bm, blocks, prec, out_dtype=np.float64,
                storage_itemsize=backend.storage_itemsize,
            )
        self._price([rec], level)
        if sp:
            sp.set(patched_rows=int(blocks.shape[0]), sim_us=rec.sim_time_us)
        csr = mbsr_to_csr(sub).eliminate_zeros(0.0)
        covered, pos = self._valid_scalars(blocks, a_op.nrows)
        return csr.extract_rows(pos), covered

    def galerkin_rows(self, level, r_new, a_new, p_new, rows, dirt):
        """Dirty coarse block-rows of ``R @ A @ P`` via the spliced fused
        plan: two restricted numeric passes, no symbolic work on clean
        rows, no CSR round-trip of the intermediate."""
        from repro.formats.convert import mbsr_to_csr

        backend = self.backend
        cache = backend.setup_cache
        cached = self.reuse.levels[level]
        rows = np.asarray(rows, dtype=np.int64)
        blocks_c = np.unique(rows // 4)

        wro, wao, wpo = (self._wrap(m)
                         for m in (cached.r, cached.a, cached.p))
        for w in (wro, wao, wpo):
            backend._ensure_mbsr(w, self.perf, self.phase, level)
        wa = self._patched_wrap(a_new, cached.a,
                                np.unique(dirt.dv // 4), level)
        wp = self._patched_wrap(p_new, cached.p,
                                np.unique(dirt.covered // 4), level)
        wr = self._patched_wrap(r_new, cached.r, blocks_c, level)

        prec = backend.schedule.for_level(level)
        rm, am, pm = (w.mbsr_at_precision(prec) for w in (wr, wa, wp))
        rmo, amo, pmo = (w.mbsr_at_precision(prec) for w in (wro, wao, wpo))

        plan = cache.rap_plan_if_cached(rm, am, pm)
        if plan is None:
            prev = cache.rap_plan_if_cached(rmo, amo, pmo)
            if prev is not None:
                plan, _ = cache.patch_rap_plan(
                    rm, am, pm, rmo, amo, pmo, prev, blocks_c
                )
            else:
                # No cached plan to splice (cold setup ran elsewhere):
                # build one — later patches of this pattern replay it.
                plan, _ = cache.rap_plan(rm, am, pm)
        sp = _kernel_span("spgemm", self.phase, level)
        with sp:
            rap_sub, records = cache.rap_numeric_rows(
                plan, rm, am, pm, blocks_c, prec, out_dtype=np.float64,
                storage_itemsize=backend.storage_itemsize,
            )
        self._price(records, level)
        if sp:
            sp.set(fused="rap", patched_rows=int(blocks_c.shape[0]),
                   sim_us=sum(rec.sim_time_us for rec in records))
        csp = _kernel_span("mbsr2csr", self.phase, level)
        with csp:
            csr = mbsr_to_csr(rap_sub).eliminate_zeros(0.0)
        self._record_sub_mbsr2csr(rap_sub, csr, level)
        covered, pos = self._valid_scalars(blocks_c, r_new.nrows)
        return csr.extract_rows(pos), covered


def make_backend(name: str, device: DeviceSpec, precision: str = "fp64") -> KernelBackend:
    """Factory: ``'hypre'`` (always FP64) or ``'amgt'`` (fp64 / mixed)."""
    if name == "hypre":
        return HypreBackend(device)
    if name == "amgt":
        return AmgTBackend(device, precision=precision)
    raise ValueError(f"unknown backend {name!r}")
