"""BoomerAMG-style driver running on a pluggable kernel backend.

The driver executes the shared AMG algorithms (setup Alg. 1, solve Alg. 2)
while routing every SpGEMM through ``backend.matmul_device`` and every SpMV
through ``backend.matvec_device``, so the baseline HYPRE configuration and
both AmgT configurations are timed on *identical* algebra, coarsening and
call counts — the alignment the paper enforces in Sec. V.A.

Per level the setup performs exactly three SpGEMM calls when extended+i
interpolation is used: one inside interpolation and two in the Galerkin
product; the third call of a level is the RAP result, whose MBSR2CSR
conversion (Fig. 6 step 5) the AmgT backend records.  The driver also
charges the non-kernel work (strength + PMIS coarsening + truncation in
setup; vector updates and the coarsest direct solve in solve) to the
``other`` budget with O(nnz)/O(n) traffic estimates so the phase
breakdowns of Figs. 1 and 2 have their denominators.
"""

from __future__ import annotations

import numpy as np

from repro.amg.cycle import SolveParams, SolveStats, amg_solve, v_cycle
from repro.amg.hierarchy import AMGHierarchy, SetupParams, amg_setup
from repro.formats.csr import CSRMatrix
from repro.hypre.backends import KernelBackend
from repro.hypre.csr_matrix import HypreCSRMatrix
from repro.obs import metrics as obs_metrics
from repro.obs import names as obs_names
from repro.obs import trace as obs_trace
from repro.perf.timeline import PerformanceLog

__all__ = ["BoomerAMG"]

#: Bytes of non-kernel setup work per stored entry of a level matrix.
#: Coarsening alone is tens of GPU kernels (strength pass, PMIS rounds with
#: neighbour sweeps, C/F marking, interpolation assembly, truncation,
#: compression), each streaming the level's entries; the constant is
#: calibrated so SpGEMM lands at the paper's ~59% share of HYPRE's setup
#: phase (Fig. 1).
_SETUP_OTHER_BYTES_PER_NNZ = 7500.0
#: Bytes of non-kernel solve work per row per V-cycle level visit (the
#: axpy/residual-norm vector traffic around each SpMV), calibrated so SpMV
#: lands at the paper's ~80% share of HYPRE's solve phase (Fig. 2).
_SOLVE_OTHER_BYTES_PER_ROW = 500.0


class BoomerAMG:
    """AMG driver with HYPRE-style phase accounting."""

    def __init__(self, backend: KernelBackend, params: SetupParams | None = None):
        self.backend = backend
        self.params = params or SetupParams()
        self.perf = PerformanceLog()
        self.hierarchy: AMGHierarchy | None = None
        #: HypreCSRMatrix wrappers per level for A / R / P, so mBSR
        #: conversions and SpMV plans are cached across the solve phase.
        self._wrapped: list[dict[str, HypreCSRMatrix]] = []
        #: Recorded solve tapes keyed by cycle shape (cycle type, smoother,
        #: sweep counts, Chebyshev degree).  Cleared on every setup; a
        #: stale entry (hierarchy mutated after recording) re-records.
        self._tapes: dict[tuple, object] = {}

    # ------------------------------------------------------------------
    # setup phase
    # ------------------------------------------------------------------
    def setup(
        self,
        a: CSRMatrix,
        reuse: AMGHierarchy | bool | None = None,
        *,
        patch: bool = False,
        patch_threshold: float = 0.5,
    ) -> AMGHierarchy:
        """Build (or numerically rebuild) the hierarchy for *a*.

        Parameters
        ----------
        a:
            The fine-level matrix.
        reuse:
            ``True`` reuses this solver's previous hierarchy; an
            :class:`AMGHierarchy` reuses that one.  When the sparsity
            patterns match, coarsening and interpolation are frozen and
            only the numeric Galerkin passes replay (through the AmgT
            backend's fused RAP plans); on any mismatch the full setup
            runs — see :func:`repro.amg.hierarchy.amg_setup`.
        patch:
            With *reuse*, try the incremental patch path first: diff
            per-row fingerprints level by level, replay SpGEMMs on the
            dirty rows only and splice them into the cached operators —
            bit-identical to a cold setup, unlike the frozen-coarsening
            exact path.  The AmgT backend patches in the mBSR domain
            through its spliced plan cache.  Falls back to a full setup
            (counted in ``setup_reuse_total``) when the dirt exceeds
            *patch_threshold* or the coarsening drifts.
        patch_threshold:
            Cumulative dirty-row budget of the patch path, as a fraction
            of the fine-level rows (see :func:`repro.amg.hierarchy.\
amg_setup`).
        """
        perf = self.perf
        backend = self.backend
        state = {"level": 0, "calls_in_level": 0}
        wrapped_cache: dict[int, HypreCSRMatrix] = {}
        if reuse is True:
            reuse = self.hierarchy
        if reuse is not None and self._wrapped:
            # Seed the wrappers of the frozen operators so their mBSR
            # twins (and plans) carry over to the re-setup.
            for entry in self._wrapped:
                for w in entry.values():
                    wrapped_cache.setdefault(id(w.csr), w)
        patcher = None
        if reuse is not None and patch:
            patcher = backend.hierarchy_patcher(reuse, perf)
            if patcher is not None:
                # Old operands convert through the carried-over wrappers.
                for key, w in wrapped_cache.items():
                    patcher.wrapped.setdefault(key, w)

        def wrap(mat: CSRMatrix) -> HypreCSRMatrix:
            w = wrapped_cache.get(id(mat))
            if w is None:
                w = HypreCSRMatrix(csr=mat)
                wrapped_cache[id(mat)] = w
            return w

        def spgemm(x: CSRMatrix, y: CSRMatrix) -> CSRMatrix:
            state["calls_in_level"] += 1
            is_rap = state["calls_in_level"] % 3 == 0
            out = backend.matmul_device(
                wrap(x), wrap(y), perf, "setup", state["level"],
                is_rap_result=is_rap,
            )
            wrapped_cache[id(out.csr)] = out
            return out.csr

        def on_level_built(level_index: int, coarse: CSRMatrix) -> None:
            # Charge the level's non-SpGEMM setup work (strength, PMIS,
            # interpolation assembly, truncation) before moving on.
            state["level"] = level_index

        def galerkin_planner(r: CSRMatrix, cur: CSRMatrix, p: CSRMatrix):
            def register(out: HypreCSRMatrix) -> None:
                wrapped_cache[id(out.csr)] = out

            return backend.galerkin_plan(
                wrap(r), wrap(cur), wrap(p), perf, "setup", state["level"],
                on_result=register,
            )

        # The phase span is opened here (not just inside amg_setup) so the
        # driver's non-kernel charges below land inside it; amg_setup's own
        # phase_span then no-ops.
        with obs_trace.phase_span("setup"):
            hierarchy = amg_setup(a, self.params, spgemm=spgemm,
                                  on_level_built=on_level_built,
                                  reuse=reuse,
                                  galerkin_planner=galerkin_planner,
                                  patch=patch, patcher=patcher,
                                  patch_threshold=patch_threshold)
            # Non-kernel setup work per level.
            per_level = {}
            if hierarchy.patched:
                per_level = {
                    e["level"]: e for e in hierarchy.patch_stats["levels"]
                }
            for lvl in hierarchy.levels[:-1]:
                if hierarchy.patched:
                    # Fingerprint diff + full strength/PMIS on dirty
                    # levels; interpolation assembly and truncation only
                    # stream the dirty fraction of the level.
                    frac = per_level.get(lvl.index, {}).get("frac", 0.0)
                    backend.record_other(
                        perf, "setup", lvl.index, "patch",
                        bytes_moved=16.0 * max(lvl.a.nnz, 1)
                        + _SETUP_OTHER_BYTES_PER_NNZ * lvl.a.nnz * frac,
                        flops=2.0 * lvl.a.nnz,
                        launches=3,
                    )
                elif hierarchy.reused:
                    # Frozen coarsening/interpolation: only the pattern checks
                    # and the smoothing-diagonal recompute stream the level.
                    backend.record_other(
                        perf, "setup", lvl.index, "resetup",
                        bytes_moved=16.0 * max(lvl.a.nnz, 1),
                        flops=2.0 * lvl.a.nnz,
                        launches=2,
                    )
                else:
                    backend.record_other(
                        perf, "setup", lvl.index, "coarsen",
                        bytes_moved=_SETUP_OTHER_BYTES_PER_NNZ * max(lvl.a.nnz, 1),
                        flops=4.0 * lvl.a.nnz,
                        launches=6,
                    )
        if patcher is not None:
            # Patched operators keep their spliced mBSR twins for the
            # solve phase.
            for key, w in patcher.wrapped.items():
                wrapped_cache.setdefault(key, w)
        self.hierarchy = hierarchy

        # Wrap the level operators once; solve-phase SpMVs reuse the
        # wrappers (and hence the cached mBSR forms and plans).
        self._wrapped = []
        for lvl in hierarchy.levels:
            entry = {"A": wrapped_cache.get(id(lvl.a)) or HypreCSRMatrix(csr=lvl.a)}
            if lvl.r is not None:
                entry["R"] = wrapped_cache.get(id(lvl.r)) or HypreCSRMatrix(csr=lvl.r)
            if lvl.p is not None:
                entry["P"] = wrapped_cache.get(id(lvl.p)) or HypreCSRMatrix(csr=lvl.p)
            self._wrapped.append(entry)
        # Every setup invalidates recorded solve tapes: even a numeric
        # re-setup produces a new hierarchy object with new operators.
        self._tapes = {}
        self._register_postmortem_context()
        return hierarchy

    def _register_postmortem_context(self) -> None:
        """Point the flight recorder's context providers at this solver.

        Bundles dumped on a violation/breakdown then carry the hierarchy
        shape, the per-level pattern keys, and every recorded tape's
        ``describe()``.  Providers hold a weakref so a dropped solver does
        not linger in the process-wide recorder.
        """
        import weakref

        from repro.obs import blackbox as obs_blackbox

        ref = weakref.ref(self)

        def _hierarchy_context():
            solver = ref()
            if solver is None or solver.hierarchy is None:
                return None
            h = solver.hierarchy
            return {
                "describe": h.describe(),
                "pattern_keys": [str(k) for k in h.pattern_keys],
                "generation": h.generation,
                "reused": h.reused,
                "patched": h.patched,
                "patch_stats": h.patch_stats,
            }

        def _tapes_context():
            solver = ref()
            if solver is None:
                return None
            return {repr(k): t.describe() for k, t in solver._tapes.items()}

        obs_blackbox.set_context("hierarchy", _hierarchy_context)
        obs_blackbox.set_context("tapes", _tapes_context)

    # ------------------------------------------------------------------
    # solve phase
    # ------------------------------------------------------------------
    def _level_spmv(self, level: int, op: str, x: np.ndarray) -> np.ndarray:
        mat = self._wrapped[level][op]
        return self.backend.matvec_device(mat, x, self.perf, "solve", level)

    def get_tape(self, params: SolveParams | None = None,
                 batch: int | None = None):
        """Recorded cycle tape for *params*' cycle shape (record or reuse).

        One tape per cycle shape per hierarchy: the first request records
        (one instrumented pass resolving every kernel binding through
        ``backend.bind_matvec``); later requests replay the cached tape.
        A stale tape — the hierarchy mutated or its generation counter
        bumped since recording — is silently re-recorded, never replayed.

        With ``batch=k`` a *batched* tape is recorded instead, keyed by
        ``(cycle_shape, k)`` and bound through ``backend.bind_matmat`` —
        width-1 tapes keep their bare cycle-shape keys, so batch tapes of
        any width coexist with them in ``_tapes``.
        """
        if self.hierarchy is None:
            raise RuntimeError("setup() must run before get_tape()")
        from repro.tape import record_cycle
        from repro.tape.tape import _cycle_shape

        params = params or SolveParams()
        shape = _cycle_shape(params)
        key = shape if batch is None else (shape, batch)
        tape = self._tapes.get(key)
        if tape is None or tape.is_stale():
            from repro.obs import blackbox as obs_blackbox

            obs_blackbox.record(
                "tape_record", batch=batch or 1,
                rerecord=tape is not None,
            )
            backend, perf = self.backend, self.perf

            def bindings(level: int, op: str):
                return backend.bind_matvec(
                    self._wrapped[level][op], perf, "solve", level
                )

            if batch is None:
                with obs_trace.span("tape.record", "solver"):
                    tape = record_cycle(self.hierarchy, params,
                                        bindings=bindings)
            else:
                def panel_bindings(level: int, op: str):
                    return backend.bind_matmat(
                        self._wrapped[level][op], perf, "solve", level,
                        batch,
                    )

                with obs_trace.span("tape.record", "solver",
                                    attrs={"batch": batch}):
                    tape = record_cycle(self.hierarchy, params,
                                        bindings=panel_bindings,
                                        batch=batch,
                                        scalar_bindings=bindings)
            self._tapes[key] = tape
            obs_metrics.inc(obs_names.TAPE_RECORDS)
        return tape

    def solve(
        self,
        b: np.ndarray,
        x0: np.ndarray | None = None,
        params: SolveParams | None = None,
        tape: bool = False,
    ) -> tuple[np.ndarray, SolveStats]:
        if self.hierarchy is None:
            raise RuntimeError("setup() must run before solve()")
        params = params or SolveParams()
        if tape:
            from repro.tape import taped_solve

            t = self.get_tape(params)
            with obs_trace.phase_span("solve"):
                x, stats = taped_solve(t, b, x0=x0, params=params)
                self._replicate_tape_perf(t, stats)
                self._charge_solve_other(stats)
            return x, stats
        with obs_trace.phase_span("solve"):
            x, stats = amg_solve(self.hierarchy, b, x0=x0, spmv=self._level_spmv,
                                 params=params)
            self._charge_solve_other(stats)
        return x, stats

    def solve_multi(
        self,
        b: np.ndarray,
        x0: np.ndarray | None = None,
        params: SolveParams | None = None,
    ) -> tuple[np.ndarray, list[SolveStats]]:
        """Solve an ``(n, k)`` block of right-hand sides in one widened
        tape replay per iteration.

        The batch path is tape-only by design — the whole point is the
        blocked SpMM amortising each loaded operator tile across the
        panel.  Column j of the result and its stats are bit-identical to
        ``solve(b[:, j], x0[:, j], params, tape=True)``; a width-k tape
        is recorded on first use and cached under ``(cycle_shape, k)``.
        """
        if self.hierarchy is None:
            raise RuntimeError("setup() must run before solve_multi()")
        from repro.tape import taped_solve_multi
        from repro.util.validation import normalize_rhs_panel

        params = params or SolveParams()
        b = normalize_rhs_panel(b, self.hierarchy.levels[0].n)
        t = self.get_tape(params, batch=b.shape[1])
        with obs_trace.phase_span("solve"):
            x, stats = taped_solve_multi(t, b, x0=x0, params=params)
            self._replicate_tape_perf(
                t, max(stats, key=lambda s: s.iterations)
            )
            self._charge_solve_other(
                max(stats, key=lambda s: s.iterations), width=b.shape[1]
            )
        return x, stats

    def precondition(self, r: np.ndarray, tape: bool = False) -> np.ndarray:
        """One V-cycle with zero initial guess (the PCG preconditioner).

        With ``tape=True`` the cycle replays through the recorded kernel
        tape (recording it on first use) instead of the interpreted
        recursion — same bits, no per-application dispatch.

        A 2-D ``(n, k)`` residual block routes to the blocked
        preconditioner: one width-k tape replay whose column j is
        bit-identical to preconditioning ``r[:, j]`` alone (tape-only,
        like :meth:`solve_multi`).
        """
        if self.hierarchy is None:
            raise RuntimeError("setup() must run before precondition()")
        r = np.asarray(r, dtype=np.float64)
        if r.ndim == 2 and r.shape[1] != 1:
            return self.precondition_multi(r, tape=tape)
        if r.ndim == 2:
            r = np.ascontiguousarray(r[:, 0])
        if tape:
            t = self.get_tape(SolveParams())
            with obs_trace.phase_span("solve"):
                z = t.apply(r)
                self.perf.records.extend(t.records)
            return z
        stats = SolveStats()
        with obs_trace.phase_span("solve"):
            z = v_cycle(
                self.hierarchy,
                np.asarray(r, dtype=np.float64),
                np.zeros(self.hierarchy.levels[0].n),
                self._level_spmv,
                SolveParams(),
                stats,
            )
        return z

    def precondition_multi(self, r: np.ndarray, tape: bool = True) -> np.ndarray:
        """Blocked preconditioner: one zero-guess widened V-cycle on an
        ``(n, k)`` residual block, returning the ``(n, k)`` correction.

        Column j is bit-identical to ``precondition(r[:, j], tape=True)``.
        The *tape* flag is accepted for interface symmetry but the batch
        path always replays a tape — there is no interpreted panel cycle.
        """
        if self.hierarchy is None:
            raise RuntimeError("setup() must run before precondition_multi()")
        from repro.util.validation import normalize_rhs_panel

        r = normalize_rhs_panel(r, self.hierarchy.levels[0].n, name="r")
        t = self.get_tape(SolveParams(), batch=r.shape[1])
        with obs_trace.phase_span("solve"):
            z = t.cycle(np.ascontiguousarray(r.T))
            self.perf.records.extend(t.records)
        return np.ascontiguousarray(z.T)

    def _replicate_tape_perf(self, tape, stats: SolveStats) -> None:
        """Bulk-append the replayed kernels' records to the perf log.

        The tape's record templates are priced at bind time and the SpMV
        cost never depends on the operand vector, so an interpreted solve
        and a replayed one produce the same record sequence: one initial
        residual, then per iteration the cycle's records plus a residual.
        """
        records = self.perf.records
        if tape.residual_record is None:
            return
        records.append(tape.residual_record)
        for _ in range(stats.iterations):
            records.extend(tape.records)
            records.append(tape.residual_record)

    def _charge_solve_other(self, stats: SolveStats, width: int = 1) -> None:
        """Vector updates + coarse solves, proportional to the SpMV count.

        A batched solve streams *width* panels through the vector updates
        and runs *width* coarse triangular solves per visit, so the
        non-kernel traffic scales with the panel width (the matrix-side
        traffic, charged in the kernel records, does not — that is the
        arithmetic-intensity rise).
        """
        hierarchy = self.hierarchy
        iters = max(stats.iterations, 1) * width
        rows_per_cycle = sum(lvl.n for lvl in hierarchy.levels[:-1])
        self.backend.record_other(
            self.perf, "solve", 0, "vector_ops",
            bytes_moved=_SOLVE_OTHER_BYTES_PER_ROW * rows_per_cycle * iters * 2.0,
            flops=6.0 * rows_per_cycle * iters,
            launches=10 * iters,
        )
        coarse_n = hierarchy.levels[-1].n
        self.backend.record_other(
            self.perf, "solve", hierarchy.num_levels - 1, "coarse_solve",
            bytes_moved=8.0 * coarse_n * coarse_n * iters,
            flops=2.0 * coarse_n * coarse_n * iters,
            launches=iters,
        )
