"""``hypre_CSRMatrix`` with the AmgT mBSR extension arrays.

The paper's integration adds the four mBSR arrays (``AmgT_mBSR_BlcPtr``
etc.) to HYPRE's CSR matrix structure so one object can serve both the CSR
components (coarsening, coarsest solve) and the mBSR kernels.  The
conversion ``AmgT_CSR2mBSR`` fills the extension lazily, and precision
casts of the tile values are cached per floating-point format for the
mixed-precision schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.formats.convert import ConversionStats, csr_to_mbsr
from repro.formats.csr import CSRMatrix
from repro.formats.mbsr import MBSRMatrix
from repro.gpu.counters import Precision
from repro.kernels.spmv import SpMVPlan

__all__ = ["HypreCSRMatrix"]


@dataclass
class HypreCSRMatrix:
    """A CSR matrix optionally carrying its mBSR twin (AmgT extension)."""

    csr: CSRMatrix
    #: The AmgT_mBSR_* arrays, filled by :meth:`amgt_csr2mbsr`.
    mbsr: MBSRMatrix | None = None
    #: Stats of the conversion that produced :attr:`mbsr` (None until run).
    conversion_stats: ConversionStats | None = None
    #: Optional :class:`~repro.kernels.setup_cache.SetupPlanCache`; when
    #: set (the AmgT backend threads its own), :meth:`amgt_csr2mbsr` reuses
    #: the cached tile layout of same-pattern matrices, paying only the
    #: value fill.
    setup_cache: object = None
    #: Per-precision casts of the mBSR tile values (mixed-precision cache).
    _casts: dict[Precision, MBSRMatrix] = field(default_factory=dict, repr=False)

    @classmethod
    def wrap(cls, mat) -> "HypreCSRMatrix":
        if isinstance(mat, HypreCSRMatrix):
            return mat
        if isinstance(mat, CSRMatrix):
            return cls(csr=mat)
        if isinstance(mat, MBSRMatrix):
            return cls(csr=mat.to_csr(), mbsr=mat)
        raise TypeError(f"cannot wrap {type(mat).__name__} as HypreCSRMatrix")

    @property
    def shape(self) -> tuple[int, int]:
        return self.csr.shape

    @property
    def nnz(self) -> int:
        return self.csr.nnz

    @property
    def has_mbsr(self) -> bool:
        return self.mbsr is not None

    def amgt_csr2mbsr(self) -> tuple[MBSRMatrix, ConversionStats | None]:
        """Fill the mBSR extension (no-op when already present).

        Returns the mBSR matrix and, when a conversion actually ran, its
        stats; the second element is None on a cache hit so callers charge
        the conversion cost exactly once (the point of the unified format).
        """
        if self.mbsr is not None:
            return self.mbsr, None
        if self.setup_cache is not None:
            # Pattern-keyed conversion: a template hit reuses the tile
            # layout and returns reduced (value-fill-only) stats.
            self.mbsr, stats = self.setup_cache.csr2mbsr(self.csr)
        else:
            self.mbsr, stats = csr_to_mbsr(self.csr, return_stats=True)
        self.conversion_stats = stats
        from repro.check import runtime as check_runtime

        if check_runtime.is_active():
            from repro.check import oracle

            oracle.verify_conversion(self.csr, self.mbsr)
        return self.mbsr, stats

    @property
    def operator_cache(self):
        """The mBSR twin's :class:`~repro.kernels.cache.OperatorCache`.

        Holds everything the solve phase reuses per operator: the SpMV
        plan, the per-precision quantised/widened tile arrays, the tile
        popcounts and the block-row expansion.  Casts produced by
        :meth:`mbsr_at_precision` share the structural state lazily
        through their own caches but the plan/popcounts live here, on the
        canonical mBSR form.
        """
        base, _ = self.amgt_csr2mbsr()
        return base.cache

    def mbsr_at_precision(self, precision: Precision) -> MBSRMatrix:
        """mBSR tile values cast to *precision* (cached).

        The returned matrix shares the index/bitmap arrays with the
        canonical form; its operator cache additionally receives the
        widened compute tiles so repeated kernel calls skip the per-call
        ``astype`` pair entirely.
        """
        base, _ = self.amgt_csr2mbsr()
        if precision == Precision.FP64 and base.dtype == np.float64:
            return base
        cached = self._casts.get(precision)
        if cached is None:
            cached = base.astype(precision.np_dtype)
            # The cast shares the structure arrays; hand it the canonical
            # form's pattern key so plan-cache lookups on any precision of
            # an operator hash the structure once.
            cached.cache.seed_pattern_key(base.cache.pattern_key)
            self._casts[precision] = cached
        return cached

    def spmv_plan(self, allow_tensor_cores: bool) -> SpMVPlan:
        """Cached SpMV preprocessing (Sec. IV.D.1), reused across calls."""
        return self.operator_cache.spmv_plan(allow_tensor_cores)
