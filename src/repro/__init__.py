"""repro — a reproduction of *AmgT: Algebraic Multigrid Solver on Tensor
Cores* (SC 2024).

The package implements the paper's full system on a simulated GPU
substrate:

* the **mBSR** unified sparse format (4x4 tiles + per-tile bitmaps),
* the hybrid tensor-core / CUDA-core **SpGEMM** and **SpMV** kernels,
* the complete **AMG** setup and solve phases (PMIS, extended+i
  interpolation via SpGEMM, Galerkin products, L1-Jacobi V-cycles),
* **mixed precision** per-level schedules (FP64 / FP32 / FP16),
* a **HYPRE-style** integration layer with a vendor-CSR baseline,
* a **multi-GPU** simulation layer, and
* the analytical **cost model** standing in for A100 / H100 / MI210
  hardware.

Quickstart::

    import numpy as np
    from repro import AmgTSolver
    from repro.matrices import poisson2d

    A = poisson2d(64)
    solver = AmgTSolver(backend="amgt", device="H100", precision="mixed")
    solver.setup(A)
    result = solver.solve(np.ones(A.nrows), tolerance=1e-8)
    print(result.iterations, result.relative_residual)
    print(solver.performance.summary())
"""

from repro.amg.solver import AmgTSolver, MultiSolveResult, SolveResult
from repro.amg.hierarchy import SetupParams, amg_setup
from repro.amg.cycle import SolveParams
from repro.formats import CSRMatrix, MBSRMatrix
from repro.gpu import get_device, list_devices, Precision
from repro.solvers import pcg

__version__ = "1.0.0"

__all__ = [
    "AmgTSolver",
    "MultiSolveResult",
    "SolveResult",
    "SetupParams",
    "SolveParams",
    "amg_setup",
    "CSRMatrix",
    "MBSRMatrix",
    "get_device",
    "list_devices",
    "Precision",
    "pcg",
    "__version__",
]
