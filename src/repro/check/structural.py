"""Structural validators: the paper's implicit invariants, made explicit.

Each validator re-derives an invariant from first principles (never through
the code path that maintains it) and raises
:class:`~repro.check.violation.ContractViolation` on disagreement:

* :func:`validate_csr` — canonical ``indptr``, sorted/unique in-range
  column indices;
* :func:`validate_mbsr` — everything CSR-shaped plus the Sec. IV.B
  bitmap/value coupling: values only under set bits, no stored all-zero
  tiles, clean row *and* column padding;
* :func:`validate_operator_cache` — every memoised field of the PR-1
  :class:`~repro.kernels.cache.OperatorCache` agrees with a fresh
  recomputation from the owning matrix's arrays, and the frozen arrays are
  actually frozen;
* :func:`validate_hierarchy` — level shapes chain correctly, ``R = P^T``
  exactly, smoothing diagonals are finite and positive;
* :func:`validate_partition` — contiguous, exhaustive rank ownership
  (empty local blocks allowed: ``ranks > n`` is legal).
"""

from __future__ import annotations

import numpy as np

from repro.check.fingerprint import fingerprint
from repro.check.violation import ContractViolation

__all__ = [
    "validate_csr",
    "validate_mbsr",
    "validate_operator_cache",
    "validate_hierarchy",
    "validate_partition",
]


def _fail(kernel: str, invariant: str, detail: str, **operands) -> None:
    raise ContractViolation(
        kernel, invariant, detail,
        operands={k: fingerprint(v) for k, v in operands.items()},
    )


# ----------------------------------------------------------------------
# CSR
# ----------------------------------------------------------------------
def validate_csr(mat, kernel: str = "CSRMatrix", name: str = "A") -> None:
    """Raise unless *mat* is a canonical CSR matrix."""
    ptr, idx, data = mat.indptr, mat.indices, mat.data
    nrows, ncols = mat.shape
    if ptr.shape[0] != nrows + 1 or ptr[0] != 0:
        _fail(kernel, "csr/indptr-canonical",
              f"{name}.indptr has length {ptr.shape[0]} (rows={nrows}) "
              f"or indptr[0]={ptr[0]} != 0", **{name: mat})
    if np.any(np.diff(ptr) < 0):
        _fail(kernel, "csr/indptr-canonical",
              f"{name}.indptr is not non-decreasing", **{name: mat})
    if idx.shape[0] != data.shape[0] or idx.shape[0] != int(ptr[-1]):
        _fail(kernel, "csr/indptr-canonical",
              f"{name}: indices/data length {idx.shape[0]}/{data.shape[0]} "
              f"!= indptr[-1]={int(ptr[-1])}", **{name: mat})
    if idx.size and (idx.min() < 0 or idx.max() >= ncols):
        _fail(kernel, "csr/indices-in-range",
              f"{name}: column index outside [0, {ncols})", **{name: mat})
    if idx.size:
        # Strictly increasing (column, within row) key <=> sorted + unique.
        key = mat.row_ids() * (ncols + 1) + idx
        if np.any(np.diff(key) <= 0):
            _fail(kernel, "csr/indices-sorted-unique",
                  f"{name}: columns not sorted/unique within rows",
                  **{name: mat})


# ----------------------------------------------------------------------
# mBSR
# ----------------------------------------------------------------------
def validate_mbsr(mat, kernel: str = "MBSRMatrix", name: str = "A") -> None:
    """Raise unless *mat* satisfies every mBSR invariant of Sec. IV.B."""
    from repro.formats.bitmap import BLOCK_SIZE, bitmap_to_mask
    from repro.formats.mbsr import block_rows

    mb = block_rows(mat.nrows)
    nb = block_rows(mat.ncols)
    ptr, idx, val, bmap = mat.blc_ptr, mat.blc_idx, mat.blc_val, mat.blc_map
    if ptr.shape[0] != mb + 1 or ptr[0] != 0 or np.any(np.diff(ptr) < 0):
        _fail(kernel, "mbsr/ptr-canonical",
              f"{name}.blc_ptr not a canonical offset array "
              f"(len={ptr.shape[0]}, mb={mb})", **{name: mat})
    blc_num = int(ptr[-1])
    if idx.shape[0] != blc_num or bmap.shape[0] != blc_num:
        _fail(kernel, "mbsr/array-lengths",
              f"{name}: blc_idx/blc_map length {idx.shape[0]}/{bmap.shape[0]}"
              f" != blc_ptr[-1]={blc_num}", **{name: mat})
    if val.shape != (blc_num, BLOCK_SIZE, BLOCK_SIZE):
        _fail(kernel, "mbsr/array-lengths",
              f"{name}: blc_val shape {val.shape} != ({blc_num}, 4, 4)",
              **{name: mat})
    if idx.size and (idx.min() < 0 or idx.max() >= nb):
        _fail(kernel, "mbsr/indices-in-range",
              f"{name}: block column outside [0, {nb})", **{name: mat})
    if blc_num:
        rows = mat.block_row_ids()
        key = rows * (nb + 1) + idx
        if np.any(np.diff(key) <= 0):
            _fail(kernel, "mbsr/tiles-sorted-unique",
                  f"{name}: tiles not sorted/unique within block rows",
                  **{name: mat})
    mask = bitmap_to_mask(bmap)
    if not np.all(val[~mask] == 0):
        bad = int(np.count_nonzero(val[~mask]))
        _fail(kernel, "mbsr/bitmap-value-agreement",
              f"{name}: {bad} nonzero value(s) outside the tile bitmaps",
              **{name: mat})
    if np.any(bmap == 0):
        _fail(kernel, "mbsr/no-empty-tiles",
              f"{name}: {int(np.sum(bmap == 0))} stored all-zero tile(s)",
              **{name: mat})
    # Padding rows/columns beyond the logical shape must be structurally
    # empty — a set bit there would feed phantom entries into the MMA unit.
    pad_rows = mb * BLOCK_SIZE - mat.nrows
    if pad_rows and blc_num:
        last = mat.block_row_ids() == mb - 1
        if np.any(mask[last][:, BLOCK_SIZE - pad_rows:, :]):
            _fail(kernel, "mbsr/row-padding-clean",
                  f"{name}: set bit in the {pad_rows} padding row(s)",
                  **{name: mat})
    pad_cols = nb * BLOCK_SIZE - mat.ncols
    if pad_cols and blc_num:
        last = idx == nb - 1
        if np.any(mask[last][:, :, BLOCK_SIZE - pad_cols:]):
            _fail(kernel, "mbsr/col-padding-clean",
                  f"{name}: set bit in the {pad_cols} padding column(s)",
                  **{name: mat})


# ----------------------------------------------------------------------
# OperatorCache coherence
# ----------------------------------------------------------------------
def validate_operator_cache(mat, kernel: str = "OperatorCache") -> None:
    """Raise unless every memoised field of *mat*'s cache is coherent.

    Each populated field is recomputed fresh from the matrix arrays and
    compared; cached arrays must also be frozen (``writeable=False``), the
    invariant that makes sharing them across kernel calls safe.
    """
    cache = mat._cache
    if cache is None:
        return  # nothing memoised yet — vacuously coherent
    from repro.formats.bitmap import BLOCK_SIZE, bitmap_popcount
    from repro.kernels.spmv import build_spmv_plan
    from repro.util.segops import flat_segment_ids

    def _cmp(field_name: str, cached, fresh) -> None:
        if cached is None:
            return
        if isinstance(cached, np.ndarray) and cached.flags.writeable:
            _fail(kernel, "cache/frozen-arrays",
                  f"cached {field_name} is writeable", A=mat)
        if not np.array_equal(np.asarray(cached), np.asarray(fresh)):
            _fail(kernel, "cache/coherent",
                  f"cached {field_name} disagrees with a fresh recomputation",
                  A=mat, cached=np.asarray(cached), fresh=np.asarray(fresh))

    _cmp("pop_per_tile", cache._pop_per_tile, bitmap_popcount(mat.blc_map))
    if cache._nnz is not None:
        fresh_nnz = int(bitmap_popcount(mat.blc_map).sum())
        if cache._nnz != fresh_nnz:
            _fail(kernel, "cache/coherent",
                  f"cached nnz {cache._nnz} != bitmap popcount sum {fresh_nnz}",
                  A=mat)
    _cmp("blocks_per_row", cache._blocks_per_row, np.diff(mat.blc_ptr))
    _cmp(
        "block_row_ids", cache._block_row_ids,
        np.repeat(np.arange(mat.mb, dtype=np.int64), np.diff(mat.blc_ptr)),
    )
    fresh_gather = (
        (mat.blc_idx * BLOCK_SIZE)[:, None]
        + np.arange(BLOCK_SIZE, dtype=np.int64)
    )
    _cmp("x_gather", cache._x_gather, fresh_gather)
    if cache._y_scatter is not None:
        rows = np.repeat(
            np.arange(mat.mb, dtype=np.int64), np.diff(mat.blc_ptr)
        )
        _cmp("y_scatter", cache._y_scatter,
             flat_segment_ids(rows, BLOCK_SIZE))
    for (in_dtype, acc_dtype), tiles in cache._tiles.items():
        quant = mat.blc_val if mat.blc_val.dtype == in_dtype else mat.blc_val.astype(in_dtype)
        fresh = quant if quant.dtype == acc_dtype else quant.astype(acc_dtype)
        _cmp(f"tiles[{in_dtype}->{acc_dtype}]", tiles, fresh)
    for (allow_tc, threshold), plan in cache._spmv_plans.items():
        fresh_plan = build_spmv_plan(
            mat, allow_tensor_cores=allow_tc, tc_threshold=threshold
        )
        if plan != fresh_plan:
            _fail(kernel, "cache/plan-coherent",
                  f"cached SpMV plan for (allow_tc={allow_tc}, "
                  f"threshold={threshold}) is {plan}, rebuild gives "
                  f"{fresh_plan}", A=mat)


# ----------------------------------------------------------------------
# AMG hierarchy
# ----------------------------------------------------------------------
def validate_hierarchy(hierarchy, kernel: str = "amg_setup") -> None:
    """Raise unless the hierarchy's operators chain and pair correctly."""
    levels = hierarchy.levels
    if not levels:
        _fail(kernel, "hierarchy/nonempty", "hierarchy has no levels")
    for k, lvl in enumerate(levels):
        if lvl.index != k:
            _fail(kernel, "hierarchy/level-indices",
                  f"level {k} carries index {lvl.index}")
        a = lvl.a
        validate_csr(a, kernel=kernel, name=f"A^{k}")
        if a.nrows != a.ncols:
            _fail(kernel, "hierarchy/square-levels",
                  f"A^{k} has shape {a.shape}", A=a)
        if lvl.dinv is not None:
            d = np.asarray(lvl.dinv)
            if d.shape != (a.nrows,):
                _fail(kernel, "hierarchy/dinv-shape",
                      f"dinv^{k} has shape {d.shape}, A has {a.nrows} rows")
            if not np.all(np.isfinite(d)) or np.any(d <= 0):
                _fail(kernel, "hierarchy/dinv-positive",
                      f"dinv^{k} contains non-finite or non-positive entries")
        last = k == len(levels) - 1
        if last:
            continue
        n_fine, n_coarse = a.nrows, levels[k + 1].a.nrows
        p, r = lvl.p, lvl.r
        if p is None or r is None:
            _fail(kernel, "hierarchy/operators-present",
                  f"level {k} is not coarsest but lacks P/R")
        validate_csr(p, kernel=kernel, name=f"P^{k}")
        validate_csr(r, kernel=kernel, name=f"R^{k}")
        if p.shape != (n_fine, n_coarse):
            _fail(kernel, "hierarchy/shape-chain",
                  f"P^{k} has shape {p.shape}, expected ({n_fine}, {n_coarse})")
        if r.shape != (n_coarse, n_fine):
            _fail(kernel, "hierarchy/shape-chain",
                  f"R^{k} has shape {r.shape}, expected ({n_coarse}, {n_fine})")
        pt = p.transpose()
        if not (
            np.array_equal(pt.indptr, r.indptr)
            and np.array_equal(pt.indices, r.indices)
            and np.array_equal(pt.data, r.data)
        ):
            _fail(kernel, "hierarchy/restriction-is-transpose",
                  f"R^{k} != (P^{k})^T", P=p, R=r)


# ----------------------------------------------------------------------
# Row partitions
# ----------------------------------------------------------------------
def validate_partition(partition, n: int, kernel: str = "partition_rows") -> None:
    """Raise unless *partition* contiguously covers exactly *n* rows."""
    starts = np.asarray(partition.starts)
    if starts.ndim != 1 or starts.shape[0] < 2:
        _fail(kernel, "dist/partition-shape",
              f"starts has shape {starts.shape}", starts=starts)
    if starts[0] != 0 or int(starts[-1]) != int(n):
        _fail(kernel, "dist/partition-cover",
              f"starts spans [{starts[0]}, {starts[-1]}], expected [0, {n}]",
              starts=starts)
    if np.any(np.diff(starts) < 0):
        _fail(kernel, "dist/partition-monotone",
              "rank ownership ranges overlap or reverse", starts=starts)
