"""Checked-mode switch: env var, programmatic toggle, scoped regions.

The kernel entry points consult :func:`is_active` on every call; the
off-path cost is one function call plus one environment lookup, which is
far below the 2% overhead budget of the warm-cache SpMV benchmark.  Checked
mode is off by default and turns on via either

* the ``REPRO_CHECK=1`` environment variable (any of ``1/true/on/yes``), or
* ``checked=True`` on :class:`~repro.amg.solver.AmgTSolver` /
  :class:`~repro.dist.par_solver.ParAMGSolver`, which wraps their
  setup/solve phases in :func:`checked_region`, or
* an explicit :func:`enable` / :func:`checked_region` in tests and the
  fuzz driver.

This module deliberately imports nothing from the rest of the package so
the kernels can depend on it without cycles.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

__all__ = ["ENV_VAR", "is_active", "enable", "disable", "checked_region"]

ENV_VAR = "REPRO_CHECK"

_TRUTHY = {"1", "true", "on", "yes"}

#: Nesting depth of programmatic activations (checked_region / enable).
_depth = 0


def is_active() -> bool:
    """True when checked mode is on (env var or an active region)."""
    if _depth > 0:
        return True
    value = os.environ.get(ENV_VAR)
    if not value:  # unset or empty: the hot off-path, one dict lookup
        return False
    return value.strip().lower() in _TRUTHY


def enable() -> None:
    """Turn checked mode on until a matching :func:`disable`."""
    global _depth
    _depth += 1


def disable() -> None:
    """Undo one :func:`enable` (never drops below zero)."""
    global _depth
    _depth = max(_depth - 1, 0)


@contextmanager
def checked_region(enabled: bool = True):
    """Scope within which the kernel contracts are verified.

    ``enabled=False`` makes the region a no-op so callers can thread a
    ``checked`` flag through without branching.
    """
    if not enabled:
        yield
        return
    enable()
    try:
        yield
    finally:
        disable()
