"""Compact operand fingerprints for contract-violation reports.

A fingerprint is a short, stable string identifying an operand well enough
to reproduce a failure: type, shape, nnz, dtype and a truncated content
hash over the defining arrays.  Hashing is only performed when a violation
is being reported (never on the hot path), so cost does not matter.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["fingerprint"]


def _digest(*arrays: np.ndarray) -> str:
    h = hashlib.sha1()
    for arr in arrays:
        a = np.ascontiguousarray(arr)
        h.update(str(a.dtype).encode())
        h.update(str(a.shape).encode())
        h.update(a.tobytes())
    return h.hexdigest()[:10]


def fingerprint(obj) -> str:
    """Return a short identifying string for *obj* (matrix, vector, plan)."""
    # Imported lazily: this module must stay importable without the format
    # layers (and without creating import cycles).
    from repro.formats.csr import CSRMatrix
    from repro.formats.mbsr import MBSRMatrix

    if isinstance(obj, MBSRMatrix):
        return (
            f"mbsr{obj.shape}[tiles={obj.blc_num} nnz={obj.nnz} "
            f"dtype={obj.dtype} h={_digest(obj.blc_ptr, obj.blc_idx, obj.blc_val, obj.blc_map)}]"
        )
    if isinstance(obj, CSRMatrix):
        return (
            f"csr{obj.shape}[nnz={obj.nnz} dtype={obj.dtype} "
            f"h={_digest(obj.indptr, obj.indices, obj.data)}]"
        )
    if isinstance(obj, np.ndarray):
        return f"ndarray{obj.shape}[dtype={obj.dtype} h={_digest(obj)}]"
    if hasattr(obj, "value"):  # Precision and other enums
        return str(obj.value)
    return repr(obj)
