"""Compact operand fingerprints for contract-violation reports.

A fingerprint is a short, stable string identifying an operand well enough
to reproduce a failure: type, shape, nnz, dtype and a truncated content
hash over the defining arrays.  Hashing is only performed when a violation
is being reported (never on the hot path), so cost does not matter.
"""

from __future__ import annotations

import numpy as np

from repro.util.hashing import content_digest

__all__ = ["fingerprint", "pattern_fingerprint"]


def _digest(*arrays: np.ndarray) -> str:
    return content_digest(*arrays, length=10)


def pattern_fingerprint(obj) -> str:
    """Digest of an operand's *sparsity structure only* (values excluded).

    Two matrices share a pattern fingerprint iff their shapes and index
    arrays (and, for mBSR, tile bitmaps) are identical — exactly the
    condition under which a captured SpGEMM plan, conversion template or
    AMG hierarchy structure can be replayed against new values.  Unlike
    :func:`fingerprint` this is used on the setup hot path (once per
    operator, cached by the owners), so it returns the bare digest with
    no decoration.
    """
    from repro.formats.csr import CSRMatrix
    from repro.formats.mbsr import MBSRMatrix

    if isinstance(obj, MBSRMatrix):
        shape = np.asarray(obj.shape, dtype=np.int64)
        return content_digest(shape, obj.blc_ptr, obj.blc_idx, obj.blc_map)
    if isinstance(obj, CSRMatrix):
        shape = np.asarray(obj.shape, dtype=np.int64)
        return content_digest(shape, obj.indptr, obj.indices)
    raise TypeError(
        f"pattern_fingerprint expects a CSR or mBSR matrix, got {type(obj).__name__}"
    )


def fingerprint(obj) -> str:
    """Return a short identifying string for *obj* (matrix, vector, plan)."""
    # Imported lazily: this module must stay importable without the format
    # layers (and without creating import cycles).
    from repro.formats.csr import CSRMatrix
    from repro.formats.mbsr import MBSRMatrix

    if isinstance(obj, MBSRMatrix):
        return (
            f"mbsr{obj.shape}[tiles={obj.blc_num} nnz={obj.nnz} "
            f"dtype={obj.dtype} h={_digest(obj.blc_ptr, obj.blc_idx, obj.blc_val, obj.blc_map)}]"
        )
    if isinstance(obj, CSRMatrix):
        return (
            f"csr{obj.shape}[nnz={obj.nnz} dtype={obj.dtype} "
            f"h={_digest(obj.indptr, obj.indices, obj.data)}]"
        )
    if isinstance(obj, np.ndarray):
        return f"ndarray{obj.shape}[dtype={obj.dtype} h={_digest(obj)}]"
    if hasattr(obj, "value"):  # Precision and other enums
        return str(obj.value)
    return repr(obj)
