"""Compact operand fingerprints and per-row digests.

A fingerprint is a short, stable string identifying an operand well enough
to reproduce a failure: type, shape, nnz, dtype and a truncated content
hash over the defining arrays.  Hashing is only performed when a violation
is being reported (never on the hot path), so cost does not matter there.

The *per-row* digests are different: they feed the incremental setup
patcher, which diffs an evolving operator against a cached hierarchy row
by row, so they must be cheap.  :func:`row_digests` computes one ``uint64``
Zobrist-style hash per row (or per mBSR block-row) in a handful of
vectorised passes: every entry is mixed with its position inside the row
(splitmix64 finaliser), the mixed words are XOR-reduced per row, and the
row length is folded into the result.  Position mixing makes permutations
of a row hash differently; XOR keeps the reduction segment-parallel.  Two
rows collide with probability ~2^-64 — the whole-matrix key defends in
depth by SHA-1 hashing the row-digest *array* (the matrix key is the
digest of the per-row digests), so a single-row collision would also have
to survive the matrix-level hash to go unnoticed.
"""

from __future__ import annotations

import numpy as np

from repro.util.hashing import content_digest
from repro.util.prefix_sum import counts_to_ptr

__all__ = [
    "fingerprint",
    "pattern_fingerprint",
    "row_digests",
    "csr_block_row_digests",
    "diff_rows",
]

_M1 = np.uint64(0xBF58476D1CE4E5B9)
_M2 = np.uint64(0x94D049BB133111EB)
_POS = np.uint64(0x9E3779B97F4A7C15)  # golden-ratio position salt
_LEN = np.uint64(0xD6E8FEB86659FD93)  # row-length salt


def _digest(*arrays: np.ndarray) -> str:
    return content_digest(*arrays, length=10)


def _mix64(x: np.ndarray) -> np.ndarray:
    """splitmix64 finaliser, vectorised (wraps mod 2^64 like the scalar)."""
    x = x.astype(np.uint64, copy=True)
    x ^= x >> np.uint64(30)
    x *= _M1
    x ^= x >> np.uint64(27)
    x *= _M2
    x ^= x >> np.uint64(31)
    return x


def _segment_xor(values: np.ndarray, row_ptr: np.ndarray) -> np.ndarray:
    """XOR-reduce ``values`` over the segments delimited by ``row_ptr``."""
    nrows = row_ptr.shape[0] - 1
    out = np.zeros(nrows, dtype=np.uint64)
    if values.shape[0] == 0:
        return out
    # Prefix-XOR then difference at segment boundaries: xor[a:b] =
    # prefix[b] ^ prefix[a].  One pass, no Python-level row loop.
    prefix = np.zeros(values.shape[0] + 1, dtype=np.uint64)
    np.bitwise_xor.accumulate(values, out=prefix[1:])
    return prefix[row_ptr[1:]] ^ prefix[row_ptr[:-1]]


def _positions_within(row_ptr: np.ndarray, total: int) -> np.ndarray:
    counts = np.diff(row_ptr)
    starts = np.repeat(row_ptr[:-1], counts)
    return np.arange(total, dtype=np.uint64) - starts.astype(np.uint64)


def _rows_from_entries(
    entry_words: np.ndarray, row_ptr: np.ndarray
) -> np.ndarray:
    """Per-row digest from per-entry words: position-mix, XOR, length-mix."""
    row_ptr = np.asarray(row_ptr, dtype=np.int64)
    pos = _positions_within(row_ptr, entry_words.shape[0])
    mixed = _mix64(entry_words ^ _mix64(pos * _POS))
    acc = _segment_xor(mixed, row_ptr)
    lens = np.diff(row_ptr).astype(np.uint64)
    return _mix64(acc ^ (lens * _LEN))


def _as_words(arr: np.ndarray) -> np.ndarray:
    """Reinterpret an array's element bytes as uint64 words (pads dtype)."""
    a = np.ascontiguousarray(arr)
    if a.dtype.itemsize == 8:
        return a.view(np.uint64).reshape(a.shape)
    return a.astype(np.int64).view(np.uint64)


def row_digests(obj, *, values: bool = False) -> np.ndarray:
    """One ``uint64`` digest per row (CSR) or per block-row (mBSR).

    With ``values=False`` only the sparsity structure of each row is
    hashed (column indices and, for mBSR, tile bitmaps); with
    ``values=True`` the stored values are folded in as raw float bits, so
    digests compare bytewise — ``-0.0`` and ``0.0`` hash differently, NaNs
    hash by payload.  Rows at equal index in two matrices of the same
    shape hash equal iff they are identical (modulo 64-bit collisions),
    which is what the incremental patcher diffs.
    """
    from repro.formats.csr import CSRMatrix
    from repro.formats.mbsr import MBSRMatrix

    if isinstance(obj, CSRMatrix):
        memo = obj.__dict__.setdefault("_row_digest_memo", {})
        if values not in memo:
            words = _as_words(obj.indices)
            if values:
                words = _mix64(words) ^ _as_words(obj.data)
            out = _rows_from_entries(words, obj.indptr)
            out.setflags(write=False)
            memo[values] = out
        return memo[values]
    if isinstance(obj, MBSRMatrix):
        words = _mix64(_as_words(obj.blc_idx)) ^ _as_words(
            obj.blc_map.astype(np.int64)
        )
        if values:
            # Fold the 16 value lanes of each tile in lane order.
            lanes = _as_words(obj.blc_val).reshape(obj.blc_num, 16)
            lane_pos = np.arange(16, dtype=np.uint64) * _POS
            words = words ^ np.bitwise_xor.reduce(
                _mix64(lanes ^ _mix64(lane_pos[None, :])), axis=1
            )
        return _rows_from_entries(words, obj.blc_ptr)
    raise TypeError(
        f"row_digests expects a CSR or mBSR matrix, got {type(obj).__name__}"
    )


def csr_block_row_digests(csr, *, values: bool = False) -> np.ndarray:
    """Per-*block-row* digests of a CSR matrix (groups of 4 scalar rows).

    The patcher works at mBSR block-row granularity; this folds each
    aligned group of 4 scalar-row digests (zero-padded at the tail) into
    one word so CSR-level diffs land directly on block rows.
    """
    scalar = row_digests(csr, values=values)
    mb = -(-csr.nrows // 4)
    padded = np.zeros(mb * 4, dtype=np.uint64)
    padded[: scalar.shape[0]] = scalar
    ptr = counts_to_ptr(np.full(mb, 4, dtype=np.int64))
    return _rows_from_entries(padded, ptr)


def diff_rows(old: np.ndarray, new: np.ndarray) -> np.ndarray:
    """Indices of rows whose digests differ (shape mismatch → all rows)."""
    old = np.asarray(old, dtype=np.uint64)
    new = np.asarray(new, dtype=np.uint64)
    if old.shape != new.shape:
        return np.arange(new.shape[0], dtype=np.int64)
    return np.flatnonzero(old != new).astype(np.int64)


def pattern_fingerprint(obj) -> str:
    """Digest of an operand's *sparsity structure only* (values excluded).

    Two matrices share a pattern fingerprint iff their shapes and index
    arrays (and, for mBSR, tile bitmaps) are identical — exactly the
    condition under which a captured SpGEMM plan, conversion template or
    AMG hierarchy structure can be replayed against new values.  Unlike
    :func:`fingerprint` this is used on the setup hot path (once per
    operator, cached by the owners), so it returns the bare digest with
    no decoration.

    The key is the SHA-1 digest of the shape plus the :func:`row_digests`
    array, so per-row diffing and whole-matrix keying share one hash pass
    and a matrix key can be patched incrementally from per-row digests.
    """
    from repro.formats.csr import CSRMatrix
    from repro.formats.mbsr import MBSRMatrix

    if isinstance(obj, (CSRMatrix, MBSRMatrix)):
        shape = np.asarray(obj.shape, dtype=np.int64)
        return content_digest(shape, row_digests(obj))
    raise TypeError(
        f"pattern_fingerprint expects a CSR or mBSR matrix, got {type(obj).__name__}"
    )


def fingerprint(obj) -> str:
    """Return a short identifying string for *obj* (matrix, vector, plan)."""
    # Imported lazily: this module must stay importable without the format
    # layers (and without creating import cycles).
    from repro.formats.csr import CSRMatrix
    from repro.formats.mbsr import MBSRMatrix

    if isinstance(obj, MBSRMatrix):
        return (
            f"mbsr{obj.shape}[tiles={obj.blc_num} nnz={obj.nnz} "
            f"dtype={obj.dtype} h={_digest(obj.blc_ptr, obj.blc_idx, obj.blc_val, obj.blc_map)}]"
        )
    if isinstance(obj, CSRMatrix):
        return (
            f"csr{obj.shape}[nnz={obj.nnz} dtype={obj.dtype} "
            f"h={_digest(obj.indptr, obj.indices, obj.data)}]"
        )
    if isinstance(obj, np.ndarray):
        return f"ndarray{obj.shape}[dtype={obj.dtype} h={_digest(obj)}]"
    if hasattr(obj, "value"):  # Precision and other enums
        return str(obj.value)
    return repr(obj)
