"""Kernel contract checker: structural validators + differential oracles.

Opt-in checked mode (``REPRO_CHECK=1`` or ``checked=True`` on the solvers)
wraps every kernel entry point in this package's validators; any breach
raises :class:`ContractViolation` naming the kernel, the invariant and the
operand fingerprints.  See the "Checked mode" section of ``DESIGN.md``.
"""

from repro.check.fingerprint import fingerprint, pattern_fingerprint
from repro.check.oracle import (
    verify_conversion,
    verify_csr_spgemm,
    verify_csr_spmv,
    verify_distributed_spmv,
    verify_galerkin,
    verify_smoother,
    verify_spgemm,
    verify_spmv,
)
from repro.check.runtime import (
    ENV_VAR,
    checked_region,
    disable,
    enable,
    is_active,
)
from repro.check.structural import (
    validate_csr,
    validate_hierarchy,
    validate_mbsr,
    validate_operator_cache,
    validate_partition,
)
from repro.check.violation import ContractViolation

__all__ = [
    "ContractViolation",
    "fingerprint",
    "pattern_fingerprint",
    "ENV_VAR",
    "is_active",
    "enable",
    "disable",
    "checked_region",
    "validate_csr",
    "validate_mbsr",
    "validate_operator_cache",
    "validate_hierarchy",
    "validate_partition",
    "verify_spmv",
    "verify_csr_spmv",
    "verify_spgemm",
    "verify_csr_spgemm",
    "verify_conversion",
    "verify_galerkin",
    "verify_smoother",
    "verify_distributed_spmv",
]
