"""Hypothesis fuzz driver for the kernel contract checker.

Generates degenerate operand shapes — empty matrices, 1x1, dimensions that
are not multiples of the 4x4 tile, duplicate COO entries, explicit zeros,
rank counts exceeding the row count — and drives every kernel entry point
through them across all precisions and both SpMV plan paths, under
:func:`repro.check.runtime.checked_region` so each call self-verifies
against the differential oracle.  Any breach surfaces as
:class:`~repro.check.violation.ContractViolation`.

Run directly::

    python -m repro.check.fuzz            # full budget
    python -m repro.check.fuzz --smoke    # CI budget (>= 200 cases)

Exit status 1 on the first contract violation (hypothesis shrinks the
failing example before it is reported).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.check.runtime import checked_region
from repro.check.violation import ContractViolation
from repro.formats.csr import CSRMatrix
from repro.gpu.counters import Precision

__all__ = ["main"]

#: Degenerate-leaning dimensions: empty, single, sub-tile, off-tile, exact
#: multiples of the 4x4 block, and just past them.
_DIMS = [0, 1, 2, 3, 4, 5, 7, 8, 9, 12, 13, 16, 17]
_DENSITIES = [0.0, 0.05, 0.15, 0.3, 0.6, 1.0]
_PRECISIONS = [Precision.FP64, Precision.FP32, Precision.FP16]

#: Cases executed so far (one generated example = one case).
_cases = 0

#: (target_name, smoke_examples, full_examples) — smoke sums to >= 200.
_SMOKE = {
    "spmv": 50,
    "spgemm": 40,
    "csr_kernels": 40,
    "conversion_cache": 40,
    "solver": 15,
    "partition": 20,
    "evolve": 15,
}
_FULL_MULTIPLIER = 4


def _random_csr(m: int, n: int, density: float, seed: int,
                value_scale: float = 1.0e3) -> CSRMatrix:
    """Random CSR with duplicate COO entries and explicit zeros.

    Values are bounded to ``|v| <= value_scale`` so FP16 quantisation never
    overflows to inf (non-finite propagation is a separate concern from
    the accumulation contracts this driver checks).
    """
    total = int(round(m * n * density))
    if m == 0 or n == 0 or total == 0:
        return CSRMatrix.zeros((m, n))
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, m, size=total)
    cols = rng.integers(0, n, size=total)  # duplicates likely, by design
    vals = rng.uniform(-value_scale, value_scale, size=total)
    vals[rng.random(total) < 0.1] = 0.0  # explicit stored zeros
    return CSRMatrix.from_coo(rows, cols, vals, (m, n))


def _random_spd(n: int, seed: int) -> CSRMatrix:
    """Small sparse SPD matrix (for solver round-trips)."""
    import scipy.sparse as sp

    rng = np.random.default_rng(seed)
    dense = rng.uniform(-1.0, 1.0, size=(n, n))
    dense[np.abs(dense) < 0.6] = 0.0  # sparsify
    spd = dense @ dense.T + n * np.eye(n)
    return CSRMatrix.from_scipy(sp.csr_matrix(spd))


def _bump() -> None:
    global _cases
    _cases += 1


# ----------------------------------------------------------------------
# Targets
# ----------------------------------------------------------------------
_shape2 = st.tuples(
    st.sampled_from(_DIMS), st.sampled_from(_DIMS),
    st.sampled_from(_DENSITIES), st.integers(0, 2**32 - 1),
)
_shape3 = st.tuples(
    st.sampled_from(_DIMS), st.sampled_from(_DIMS), st.sampled_from(_DIMS),
    st.sampled_from(_DENSITIES), st.integers(0, 2**32 - 1),
)


def _fuzz_spmv(case) -> None:
    """mbsr_spmv across all precisions and both plan paths."""
    from repro.check import oracle
    from repro.formats.convert import csr_to_mbsr
    from repro.kernels.spmv import mbsr_spmv

    m, n, density, seed = case
    a = _random_csr(m, n, density, seed)
    am = csr_to_mbsr(a)
    x = np.random.default_rng(seed ^ 0x5A).uniform(-1e3, 1e3, size=n)
    with checked_region():
        oracle.verify_conversion(a, am)
        for prec in _PRECISIONS:
            for allow_tc in (True, False):
                # threshold 0 forces the tensor-core path, 1e9 the
                # CUDA-core path — both schedules on the same operand.
                for threshold in (0.0, 1.0e9):
                    plan = am.cache.spmv_plan(allow_tc, threshold)
                    mbsr_spmv(am, x, prec, plan, allow_tensor_cores=allow_tc)
    _bump()


def _fuzz_spgemm(case) -> None:
    """mbsr_spgemm across precisions, plus the out_dtype override."""
    from repro.formats.convert import csr_to_mbsr
    from repro.kernels.spgemm import mbsr_spgemm

    m, k, n, density, seed = case
    am = csr_to_mbsr(_random_csr(m, k, density, seed))
    bm = csr_to_mbsr(_random_csr(k, n, density, seed ^ 0xB))
    with checked_region():
        for prec in _PRECISIONS:
            mbsr_spgemm(am, bm, prec)
        mbsr_spgemm(am, bm, Precision.FP32, out_dtype=np.float64)
    _bump()


def _fuzz_csr_kernels(case) -> None:
    """Vendor-style csr_spmv / csr_spgemm across precisions."""
    from repro.kernels.baseline import csr_spgemm, csr_spmv

    m, k, n, density, seed = case
    a = _random_csr(m, k, density, seed)
    b = _random_csr(k, n, density, seed ^ 0xC)
    x = np.random.default_rng(seed ^ 0xD).uniform(-1e3, 1e3, size=k)
    with checked_region():
        for prec in _PRECISIONS:
            csr_spmv(a, x, prec)
            csr_spgemm(a, b, prec)
    _bump()


def _fuzz_conversion_cache(case) -> None:
    """Format conversions, casts, transposes + OperatorCache coherence."""
    from repro.check.structural import validate_mbsr, validate_operator_cache
    from repro.hypre.csr_matrix import HypreCSRMatrix

    m, n, density, seed = case
    a = _random_csr(m, n, density, seed)
    with checked_region():
        wrapped = HypreCSRMatrix(csr=a)
        am, _ = wrapped.amgt_csr2mbsr()  # hook verifies the round-trip
        cache = am.cache
        # Touch every memoised field, then recompute-and-compare.
        cache.pop_per_tile, cache.nnz, cache.block_row_ids
        cache.blocks_per_row, cache.x_gather, cache.y_scatter
        cache.tiles(np.float16, np.float32)
        cache.tiles(np.float32, np.float32)
        cache.spmv_plan(True)
        cache.spmv_plan(False, 3.0)
        validate_operator_cache(am)
        validate_mbsr(am.transpose(), kernel="mbsr_transpose")
        for prec in _PRECISIONS:
            cast = wrapped.mbsr_at_precision(prec)
            validate_mbsr(cast, kernel="mbsr_astype")
    _bump()


_solver_case = st.tuples(
    st.integers(2, 12), st.integers(0, 2**32 - 1),
    st.sampled_from(["amgt", "hypre"]), st.sampled_from(["fp64", "mixed"]),
)


def _fuzz_solver(case) -> None:
    """Short checked solves on tiny SPD systems, both backends."""
    from repro.amg.solver import AmgTSolver

    n, seed, backend, precision = case
    a = _random_spd(n, seed)
    solver = AmgTSolver(backend=backend, precision=precision, checked=True)
    solver.setup(a)
    b = np.random.default_rng(seed ^ 0xE).uniform(-1.0, 1.0, size=n)
    solver.solve(b, max_iterations=2)
    _bump()


_partition_case = st.tuples(
    st.integers(2, 10), st.integers(1, 40), st.integers(0, 2**32 - 1),
)


def _fuzz_partition(case) -> None:
    """partition_rows with ranks > n, and the distributed round-trip."""
    from repro.amg.cycle import SolveParams, amg_solve
    from repro.check.structural import validate_partition
    from repro.dist.par_solver import ParAMGSolver
    from repro.dist.partition import partition_rows

    n, ranks, seed = case
    validate_partition(partition_rows(n, ranks), n)
    validate_partition(partition_rows(0, ranks), 0)

    a = _random_spd(n, seed)
    b = np.random.default_rng(seed ^ 0xF).uniform(-1.0, 1.0, size=n)
    par = ParAMGSolver(num_ranks=ranks, backend="amgt", checked=True)
    par.setup(a)
    x_par, _ = par.solve(b, max_iterations=3)
    x_ser, _ = amg_solve(par.hierarchy, b, params=SolveParams(max_iterations=3))
    if not np.allclose(x_par, x_ser, rtol=1e-9, atol=1e-9):
        raise ContractViolation(
            "ParAMGSolver.solve", "dist/serial-roundtrip",
            f"distributed iterate differs from the serial solve by "
            f"{float(np.max(np.abs(x_par - x_ser)))!r} "
            f"(n={n}, ranks={ranks}, seed={seed})",
        )
    _bump()


_evolve_case = st.tuples(
    st.sampled_from(["newton", "timestep", "refine"]),
    st.sampled_from([8, 12, 17]),
    st.sampled_from([0.02, 0.08, 0.25]),
    st.integers(0, 2**32 - 1),
)


def _fuzz_evolve(case) -> None:
    """Evolving sequences: diff exactness + patched/cold bit-identity.

    Two contracts per step of the sequence:

    * the per-row fingerprint diff names *exactly* the rows that changed
      (no misses, no spurious rows);
    * whatever ``amg_setup(reuse=..., patch=True)`` returns — patched or
      any fallback — carries the same bits as a cold setup of the new
      matrix.
    """
    from repro.amg.hierarchy import amg_setup
    from repro.check.fingerprint import diff_rows, row_digests
    from repro.matrices.generators import evolving_sequence

    kind, nx, frac, seed = case
    seq = evolving_sequence(kind, nx=nx, steps=2, dirty_frac=frac, seed=seed)
    prev_mat, prev_h = seq[0], amg_setup(seq[0])
    for a in seq[1:]:
        predicted = diff_rows(row_digests(prev_mat, values=True),
                              row_digests(a, values=True))
        actual = [
            i for i in range(a.nrows)
            if not np.array_equal(prev_mat.indptr[i:i + 2] - prev_mat.indptr[i],
                                  a.indptr[i:i + 2] - a.indptr[i])
            or not np.array_equal(
                prev_mat.indices[prev_mat.indptr[i]:prev_mat.indptr[i + 1]],
                a.indices[a.indptr[i]:a.indptr[i + 1]])
            or not np.array_equal(
                prev_mat.data[prev_mat.indptr[i]:prev_mat.indptr[i + 1]],
                a.data[a.indptr[i]:a.indptr[i + 1]])
        ]
        if predicted.tolist() != actual:
            raise ContractViolation(
                "fingerprint.diff_rows", "patch/diff-exact",
                f"digest diff predicted rows {predicted.tolist()} but "
                f"{actual} changed ({kind}, nx={nx}, frac={frac}, "
                f"seed={seed})",
            )
        h = amg_setup(a, reuse=prev_h, patch=True)
        cold = amg_setup(a)
        if h.num_levels != cold.num_levels:
            raise ContractViolation(
                "amg_setup", "patch/cold-identical",
                f"level count {h.num_levels} != cold {cold.num_levels}",
            )
        for k, (lp, lc) in enumerate(zip(h.levels, cold.levels)):
            for name in ("a", "p", "r"):
                mp, mc = getattr(lp, name), getattr(lc, name)
                if (mp is None) != (mc is None):
                    raise ContractViolation(
                        "amg_setup", "patch/cold-identical",
                        f"level {k} operator {name!r} presence differs",
                    )
                if mp is None:
                    continue
                if not (np.array_equal(mp.indptr, mc.indptr)
                        and np.array_equal(mp.indices, mc.indices)
                        and np.array_equal(mp.data, mc.data)):
                    raise ContractViolation(
                        "amg_setup", "patch/cold-identical",
                        f"level {k} operator {name!r} differs from the "
                        f"cold setup ({kind}, nx={nx}, frac={frac}, "
                        f"seed={seed}, patched={h.patched})",
                    )
        prev_mat, prev_h = a, h
    _bump()


_TARGETS = [
    ("spmv", _fuzz_spmv, _shape2),
    ("spgemm", _fuzz_spgemm, _shape3),
    ("csr_kernels", _fuzz_csr_kernels, _shape3),
    ("conversion_cache", _fuzz_conversion_cache, _shape2),
    ("solver", _fuzz_solver, _solver_case),
    ("partition", _fuzz_partition, _partition_case),
    ("evolve", _fuzz_evolve, _evolve_case),
]


def _run_target(fn, strategy, max_examples: int) -> None:
    runner = settings(
        max_examples=max_examples,
        deadline=None,
        derandomize=True,
        database=None,
        suppress_health_check=list(HealthCheck),
    )(given(strategy)(fn))
    runner()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check.fuzz", description=__doc__
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="bounded CI budget (>= 200 cases) instead of the full sweep",
    )
    parser.add_argument(
        "--target", choices=[name for name, _, _ in _TARGETS],
        help="run a single target instead of all of them",
    )
    args = parser.parse_args(argv)

    global _cases
    _cases = 0
    for name, fn, strategy in _TARGETS:
        if args.target and name != args.target:
            continue
        budget = _SMOKE[name] * (1 if args.smoke else _FULL_MULTIPLIER)
        print(f"[fuzz] {name}: {budget} cases ...", flush=True)
        try:
            _run_target(fn, strategy, budget)
        except ContractViolation as exc:
            print(f"[fuzz] FAIL after {_cases} cases: {exc}", file=sys.stderr)
            return 1
    print(f"[fuzz] OK: {_cases} cases, zero contract violations")
    return 0


if __name__ == "__main__":
    sys.exit(main())
