"""The structured error raised when a kernel contract fails.

Every checked-mode validator raises :class:`ContractViolation` rather than
a bare assertion so callers (and the fuzz driver) can report *which* kernel
broke *which* invariant on *which* operands.  The class subclasses
``AssertionError``: a violation is a bug in this library, never a user
error, and existing ``check_invariants``-style expectations keep working.
"""

from __future__ import annotations

__all__ = ["ContractViolation"]


class ContractViolation(AssertionError):
    """A kernel or data structure broke one of its stated invariants.

    Attributes
    ----------
    kernel:
        Name of the entry point (``"mbsr_spmv"``, ``"galerkin_product"``,
        ...) or data structure (``"MBSRMatrix"``) whose contract failed.
    invariant:
        Slash-scoped invariant name, e.g. ``"mbsr/bitmap-value-agreement"``
        or ``"spmv/differential"``.
    operands:
        Mapping of operand name to its fingerprint string (see
        :mod:`repro.check.fingerprint`).
    detail:
        Free-form description of the observed mismatch.
    """

    def __init__(
        self,
        kernel: str,
        invariant: str,
        detail: str = "",
        operands: dict[str, str] | None = None,
    ) -> None:
        self.kernel = str(kernel)
        self.invariant = str(invariant)
        self.detail = str(detail)
        self.operands = dict(operands or {})
        parts = [f"{self.kernel}: invariant {self.invariant!r} violated"]
        if self.detail:
            parts.append(self.detail)
        if self.operands:
            ops = ", ".join(f"{k}={v}" for k, v in sorted(self.operands.items()))
            parts.append(f"operands: {ops}")
        super().__init__("; ".join(parts))
