"""The structured error raised when a kernel contract fails.

Every checked-mode validator raises :class:`ContractViolation` rather than
a bare assertion so callers (and the fuzz driver) can report *which* kernel
broke *which* invariant on *which* operands.  The class subclasses
``AssertionError``: a violation is a bug in this library, never a user
error, and existing ``check_invariants``-style expectations keep working.
"""

from __future__ import annotations

__all__ = ["ContractViolation"]


class ContractViolation(AssertionError):
    """A kernel or data structure broke one of its stated invariants.

    Attributes
    ----------
    kernel:
        Name of the entry point (``"mbsr_spmv"``, ``"galerkin_product"``,
        ...) or data structure (``"MBSRMatrix"``) whose contract failed.
    invariant:
        Slash-scoped invariant name, e.g. ``"mbsr/bitmap-value-agreement"``
        or ``"spmv/differential"``.
    operands:
        Mapping of operand name to its fingerprint string (see
        :mod:`repro.check.fingerprint`).
    detail:
        Free-form description of the observed mismatch.
    """

    def __init__(
        self,
        kernel: str,
        invariant: str,
        detail: str = "",
        operands: dict[str, str] | None = None,
    ) -> None:
        self.kernel = str(kernel)
        self.invariant = str(invariant)
        self.detail = str(detail)
        self.operands = dict(operands or {})
        parts = [f"{self.kernel}: invariant {self.invariant!r} violated"]
        if self.detail:
            parts.append(self.detail)
        if self.operands:
            ops = ", ".join(f"{k}={v}" for k, v in sorted(self.operands.items()))
            parts.append(f"operands: {ops}")
        super().__init__("; ".join(parts))
        # Constructing a violation IS the crash event: freeze the flight
        # recorder into a postmortem bundle before the raise unwinds the
        # solver state the bundle describes.  Lazy import (obs.blackbox
        # imports nothing at module level) and best-effort: the dump must
        # never mask the violation itself.
        try:
            from repro.obs import blackbox

            blackbox.trigger(
                "contract-violation",
                detail=str(self),
                extra={
                    "kernel": self.kernel,
                    "invariant": self.invariant,
                    "operands": self.operands,
                },
            )
        except Exception:  # pragma: no cover - defensive
            pass
