"""Differential oracles: replay kernel calls against scipy references.

Each ``verify_*`` function recomputes the kernel's result through an
independent path (scipy sparse / dense float64 algebra) and compares with a
**precision-aware tolerance**: the oracle replays the exact quantisation
the kernel applies (values cast to ``precision.np_dtype`` before the
product), so the only admissible difference is accumulation-order rounding
— bounded by ``eps(precision.accum_dtype)`` scaled by the accumulation
depth and the magnitude bound ``|A| @ |x|``.  FP64 is therefore checked at
float64-ulp tightness; FP32/FP16 get proportionally wider, ulp-scaled
bands.  Structural expectations (output dtype, plan coherence, bitmap
agreement) are exact.

Where the executing precision is *not* knowable at the call site (the
smoother and Galerkin hooks sit above the backend's per-level schedule),
the tolerance is widened to the coarsest precision any backend may apply
(FP16 quantisation, FP32 accumulation); the tight per-precision check
still happens underneath, at the mbsr/csr kernel entry points.
"""

from __future__ import annotations

import numpy as np

from repro.check.fingerprint import fingerprint
from repro.check.violation import ContractViolation

__all__ = [
    "verify_spmv",
    "verify_csr_spmv",
    "verify_spgemm",
    "verify_csr_spgemm",
    "verify_conversion",
    "verify_galerkin",
    "verify_smoother",
    "verify_distributed_spmv",
]

#: Safety factor on the analytic rounding bounds (accumulation order is
#: implementation defined; 4x absorbs pairwise-vs-sequential differences).
_SAFETY = 4.0

#: Quantisation step of the loosest precision any backend schedule may
#: apply, used where the call site cannot see the executing precision.
_WORST_CASE_EPS = float(np.finfo(np.float16).eps)


def _fail(kernel, invariant, detail, **operands):
    raise ContractViolation(
        kernel, invariant, detail,
        operands={k: fingerprint(v) for k, v in operands.items()},
    )


def _acc_eps(precision) -> float:
    return float(np.finfo(precision.accum_dtype).eps)


def _quantise(values: np.ndarray, precision) -> np.ndarray:
    """Replay the kernel's value quantisation, widened back to float64."""
    return np.asarray(values).astype(precision.np_dtype).astype(np.float64)


def _mbsr_scipy(mat, precision):
    """Quantised scipy CSR twin of an mBSR matrix, built bit-by-bit.

    Constructed from the bitmap positions directly (not through
    ``mbsr_to_csr``) so the reference shares no dataflow with the kernels
    under test.
    """
    import scipy.sparse as sp

    from repro.formats.bitmap import BLOCK_SIZE, bitmap_to_mask

    if mat.blc_num == 0:
        return sp.csr_matrix(mat.shape, dtype=np.float64)
    mask = bitmap_to_mask(mat.blc_map)
    brow = mat.block_row_ids()
    r_off = np.arange(BLOCK_SIZE, dtype=np.int64)
    rows = brow[:, None, None] * BLOCK_SIZE + r_off[None, :, None]
    cols = mat.blc_idx[:, None, None] * BLOCK_SIZE + r_off[None, None, :]
    rows = np.broadcast_to(rows, mask.shape)[mask]
    cols = np.broadcast_to(cols, mask.shape)[mask]
    vals = _quantise(mat.blc_val, precision)[mask]
    return sp.csr_matrix((vals, (rows, cols)), shape=mat.shape)


def _csr_scipy(mat, precision):
    import scipy.sparse as sp

    return sp.csr_matrix(
        (_quantise(mat.data, precision), mat.indices, mat.indptr),
        shape=mat.shape,
    )


def _compare_vectors(kernel, got, ref, tol, operands, invariant="spmv/differential"):
    got = np.asarray(got, dtype=np.float64)
    got_bad = ~np.isfinite(got)
    ref_bad = ~np.isfinite(ref)
    if not np.array_equal(got_bad, ref_bad):
        _fail(kernel, invariant,
              "non-finite pattern differs from the reference", **operands)
    ok = got_bad | (np.abs(got - ref) <= tol)
    if not np.all(ok):
        i = int(np.argmax(~ok))
        _fail(kernel, invariant,
              f"entry {i}: got {got[i]!r}, reference {ref[i]!r}, "
              f"tolerance {tol[i] if np.ndim(tol) else tol!r} "
              f"({int(np.count_nonzero(~ok))} entries out of band)",
              **operands)


# ----------------------------------------------------------------------
# SpMV
# ----------------------------------------------------------------------
def _verify_plan(mat, plan, kernel):
    """Plan/operator coherence: the plan must describe *this* matrix."""
    from repro.kernels.spmv import build_spmv_plan

    if plan.use_tensor_cores:
        fresh = build_spmv_plan(mat, allow_tensor_cores=True, tc_threshold=-1.0)
    else:
        fresh = build_spmv_plan(mat, allow_tensor_cores=False)
    if plan != fresh:
        _fail(kernel, "spmv/plan-coherent",
              f"supplied plan {plan} does not match a rebuild {fresh} "
              "for the operand matrix", A=mat)


def verify_spmv(mat, x, y, precision, plan=None, kernel="mbsr_spmv"):
    """Differential + structural check of one ``mbsr_spmv`` call."""
    from repro.check.structural import validate_mbsr, validate_operator_cache

    validate_mbsr(mat, kernel=kernel)
    validate_operator_cache(mat, kernel=kernel)
    acc_dtype = np.dtype(precision.accum_dtype)
    y = np.asarray(y)
    if y.shape != (mat.nrows,):
        _fail(kernel, "spmv/output-shape",
              f"y has shape {y.shape}, expected ({mat.nrows},)", A=mat, x=x)
    if y.dtype != acc_dtype:
        _fail(kernel, "spmv/output-dtype",
              f"y has dtype {y.dtype}, expected {acc_dtype} "
              f"(accumulator of {precision.value})", A=mat, x=x)
    if plan is not None:
        _verify_plan(mat, plan, kernel)
    aq = _mbsr_scipy(mat, precision)
    xq = _quantise(np.asarray(x), precision)
    ref = aq @ xq
    scale = abs(aq) @ np.abs(xq)
    terms = np.diff(aq.indptr)
    tol = _SAFETY * _acc_eps(precision) * (terms + 8.0) * scale
    _compare_vectors(kernel, y, ref, tol, {"A": mat, "x": x, "y": y})


def verify_csr_spmv(mat, x, y, precision, kernel="csr_spmv"):
    """Differential check of one vendor-style ``csr_spmv`` call."""
    from repro.check.structural import validate_csr

    validate_csr(mat, kernel=kernel)
    acc_dtype = np.dtype(precision.accum_dtype)
    y = np.asarray(y)
    if y.shape != (mat.nrows,):
        _fail(kernel, "spmv/output-shape",
              f"y has shape {y.shape}, expected ({mat.nrows},)", A=mat, x=x)
    if y.dtype != acc_dtype:
        _fail(kernel, "spmv/output-dtype",
              f"y has dtype {y.dtype}, expected {acc_dtype}", A=mat, x=x)
    aq = _csr_scipy(mat, precision)
    xq = _quantise(np.asarray(x), precision)
    ref = aq @ xq
    scale = abs(aq) @ np.abs(xq)
    terms = np.diff(aq.indptr)
    tol = _SAFETY * _acc_eps(precision) * (terms + 8.0) * scale
    _compare_vectors(kernel, y, ref, tol, {"A": mat, "x": x, "y": y})


def verify_distributed_spmv(global_mat, x, y, precision, num_ranks,
                            kernel="par_spmv"):
    """Check a distributed SpMV assembly against the global operator."""
    aq = _csr_scipy(global_mat, precision)
    xq = _quantise(np.asarray(x), precision)
    ref = aq @ xq
    scale = abs(aq) @ np.abs(xq)
    terms = np.diff(aq.indptr)
    # Per-rank tiling changes the tile layout (hence summation order) and
    # each rank splits rows into diag + offd partial sums.
    tol = _SAFETY * _acc_eps(precision) * (terms + 8.0 + 2.0 * num_ranks) * scale
    y = np.asarray(y, dtype=np.float64)
    if y.shape != (global_mat.nrows,):
        _fail(kernel, "spmv/output-shape",
              f"assembled y has shape {y.shape}, expected "
              f"({global_mat.nrows},)", A=global_mat, x=x)
    _compare_vectors(kernel, y, ref, tol, {"A": global_mat, "x": x, "y": y})


# ----------------------------------------------------------------------
# SpGEMM
# ----------------------------------------------------------------------
def _sparse_compare(kernel, invariant, got, ref, scale, factor, operands):
    """Elementwise ``|got - ref| <= factor * scale`` over the union pattern."""
    diff = (got - ref).tocoo()
    if diff.nnz == 0:
        return
    bound = np.asarray(scale.tocsr()[diff.row, diff.col]).ravel() * factor
    bad = np.abs(diff.data) > bound
    if np.any(bad):
        i = int(np.argmax(bad))
        _fail(kernel, invariant,
              f"entry ({diff.row[i]}, {diff.col[i]}): difference "
              f"{diff.data[i]!r} exceeds tolerance {bound[i]!r} "
              f"({int(np.count_nonzero(bad))} entries out of band)",
              **operands)


def _pattern_coo(mat_scipy):
    coo = mat_scipy.tocoo()
    order = np.lexsort((coo.col, coo.row))
    return coo.row[order], coo.col[order]


def verify_spgemm(mat_a, mat_b, mat_c, precision, out_dtype=None,
                  kernel="mbsr_spgemm"):
    """Differential + structural check of one ``mbsr_spgemm`` call."""
    from repro.check.structural import validate_mbsr

    validate_mbsr(mat_a, kernel=kernel, name="A")
    validate_mbsr(mat_b, kernel=kernel, name="B")
    validate_mbsr(mat_c, kernel=kernel, name="C")
    if mat_c.shape != (mat_a.nrows, mat_b.ncols):
        _fail(kernel, "spgemm/output-shape",
              f"C has shape {mat_c.shape}, expected "
              f"({mat_a.nrows}, {mat_b.ncols})", A=mat_a, B=mat_b)
    expected_dtype = np.dtype(out_dtype) if out_dtype is not None else np.dtype(
        precision.accum_dtype
    )
    if mat_c.dtype != expected_dtype:
        _fail(kernel, "spgemm/output-dtype",
              f"C values have dtype {mat_c.dtype}, expected {expected_dtype}",
              A=mat_a, B=mat_b, C=mat_c)

    aq = _mbsr_scipy(mat_a, precision)
    bq = _mbsr_scipy(mat_b, precision)
    # C values are compared as stored (they are already accumulator/output
    # dtype); re-quantising would hide output-dtype bugs.
    import scipy.sparse as sp

    from repro.formats.bitmap import BLOCK_SIZE, bitmap_to_mask

    if mat_c.blc_num:
        mask = bitmap_to_mask(mat_c.blc_map)
        brow = mat_c.block_row_ids()
        off = np.arange(BLOCK_SIZE, dtype=np.int64)
        rows = np.broadcast_to(
            brow[:, None, None] * BLOCK_SIZE + off[None, :, None], mask.shape
        )[mask]
        cols = np.broadcast_to(
            mat_c.blc_idx[:, None, None] * BLOCK_SIZE + off[None, None, :],
            mask.shape,
        )[mask]
        c_vals = np.asarray(mat_c.blc_val, dtype=np.float64)[mask]
        c_scipy = sp.csr_matrix((c_vals, (rows, cols)), shape=mat_c.shape)
    else:
        c_scipy = sp.csr_matrix(mat_c.shape, dtype=np.float64)

    # Symbolic/numeric agreement: the bitmap must carry exactly the scalar
    # boolean product pattern (Alg. 4's OR-accumulation).  The pattern is
    # over *structural* entries — stored positions, explicit zeros
    # included — so the reference multiplies all-ones matrices on the
    # operands' patterns (counts are positive: no cancellation can prune).
    ones_a, ones_b = aq.copy(), bq.copy()
    ones_a.data = np.ones_like(ones_a.data)
    ones_b.data = np.ones_like(ones_b.data)
    pattern_ref = ones_a @ ones_b
    got_r, got_c = _pattern_coo(c_scipy)
    ref_r, ref_c = _pattern_coo(pattern_ref)
    if not (np.array_equal(got_r, ref_r) and np.array_equal(got_c, ref_c)):
        _fail(kernel, "spgemm/bitmap-pattern",
              f"C stores {got_r.shape[0]} structural entries, the boolean "
              f"product has {ref_r.shape[0]}", A=mat_a, B=mat_b, C=mat_c)

    ref = aq @ bq
    scale = abs(aq) @ abs(bq)
    depth = float(np.diff(aq.indptr).max()) if aq.nnz else 1.0
    factor = _SAFETY * _acc_eps(precision) * (depth + 8.0)
    _sparse_compare(kernel, "spgemm/differential", c_scipy, ref, scale,
                    factor, {"A": mat_a, "B": mat_b, "C": mat_c})


def verify_csr_spgemm(mat_a, mat_b, mat_c, precision, kernel="csr_spgemm"):
    """Differential check of one vendor-style ``csr_spgemm`` call."""
    from repro.check.structural import validate_csr

    validate_csr(mat_a, kernel=kernel, name="A")
    validate_csr(mat_b, kernel=kernel, name="B")
    validate_csr(mat_c, kernel=kernel, name="C")
    if mat_c.shape != (mat_a.nrows, mat_b.ncols):
        _fail(kernel, "spgemm/output-shape",
              f"C has shape {mat_c.shape}, expected "
              f"({mat_a.nrows}, {mat_b.ncols})", A=mat_a, B=mat_b)
    import scipy.sparse as sp

    aq = _csr_scipy(mat_a, precision)
    bq = _csr_scipy(mat_b, precision)
    c_scipy = sp.csr_matrix(
        (np.asarray(mat_c.data, dtype=np.float64), mat_c.indices, mat_c.indptr),
        shape=mat_c.shape,
    )
    ref = aq @ bq
    scale = abs(aq) @ abs(bq)
    depth = float(np.diff(aq.indptr).max()) if aq.nnz else 1.0
    factor = _SAFETY * _acc_eps(precision) * (depth + 8.0)
    _sparse_compare(kernel, "spgemm/differential", c_scipy, ref, scale,
                    factor, {"A": mat_a, "B": mat_b, "C": mat_c})


# ----------------------------------------------------------------------
# Conversions
# ----------------------------------------------------------------------
def verify_conversion(csr, mbsr, kernel="csr2mbsr"):
    """CSR -> mBSR must be a lossless re-tiling (exact, no tolerance)."""
    from repro.check.structural import validate_mbsr
    from repro.formats.bitmap import BLOCK_SIZE, bitmap_to_mask

    validate_mbsr(mbsr, kernel=kernel)
    if mbsr.shape != csr.shape:
        _fail(kernel, "conversion/shape",
              f"mBSR shape {mbsr.shape} != CSR shape {csr.shape}",
              csr=csr, mbsr=mbsr)
    if mbsr.blc_num:
        mask = bitmap_to_mask(mbsr.blc_map)
        brow = mbsr.block_row_ids()
        off = np.arange(BLOCK_SIZE, dtype=np.int64)
        rows = np.broadcast_to(
            brow[:, None, None] * BLOCK_SIZE + off[None, :, None], mask.shape
        )[mask]
        cols = np.broadcast_to(
            mbsr.blc_idx[:, None, None] * BLOCK_SIZE + off[None, None, :],
            mask.shape,
        )[mask]
        vals = np.asarray(mbsr.blc_val)[mask]
        order = np.lexsort((cols, rows))
        rows, cols, vals = rows[order], cols[order], vals[order]
    else:
        rows = cols = np.zeros(0, dtype=np.int64)
        vals = np.zeros(0)
    if not (
        rows.shape[0] == csr.nnz
        and np.array_equal(rows, csr.row_ids())
        and np.array_equal(cols, csr.indices)
        and np.array_equal(vals, np.asarray(csr.data))
    ):
        _fail(kernel, "conversion/lossless-roundtrip",
              f"mBSR stores {rows.shape[0]} bits, CSR has {csr.nnz} entries "
              "(or positions/values differ)", csr=csr, mbsr=mbsr)


# ----------------------------------------------------------------------
# AMG-level oracles (precision not visible at the call site)
# ----------------------------------------------------------------------
def verify_galerkin(r, a, p, rap, kernel="galerkin_product"):
    """``RAP`` against the scipy triple product, worst-case-precision band."""
    from repro.check.structural import validate_csr

    validate_csr(rap, kernel=kernel, name="RAP")
    if rap.shape != (r.nrows, p.ncols):
        _fail(kernel, "galerkin/output-shape",
              f"RAP has shape {rap.shape}, expected ({r.nrows}, {p.ncols})",
              R=r, A=a, P=p)
    rs, as_, ps = (m.to_scipy().astype(np.float64) for m in (r, a, p))
    import scipy.sparse as sp

    ref = rs @ as_ @ ps
    scale = abs(rs) @ abs(as_) @ abs(ps)
    got = sp.csr_matrix(
        (np.asarray(rap.data, dtype=np.float64), rap.indices, rap.indptr),
        shape=rap.shape,
    )
    depth = float(np.diff(as_.indptr).max() + 2) if as_.nnz else 2.0
    factor = _SAFETY * _WORST_CASE_EPS * depth
    _sparse_compare(kernel, "galerkin/differential", got, ref, scale, factor,
                    {"R": r, "A": a, "P": p, "RAP": rap})


def verify_smoother(a, dinv, x0, b, x_out, num_sweeps,
                    kernel="l1_jacobi_sweep"):
    """L1-Jacobi sweeps against a float64 scipy replay of Alg. 2.

    The injected SpMV may have run at any precision of the backend's
    schedule, so the band is the worst-case FP16 quantisation error
    propagated through the sweeps; the per-precision tight check happens
    at the SpMV kernel entry underneath.
    """
    a_s = a.to_scipy().astype(np.float64)
    a_abs = abs(a_s)
    d = np.asarray(dinv, dtype=np.float64)
    x = np.asarray(x0, dtype=np.float64).copy()
    bound = np.zeros_like(x)
    b64 = np.asarray(b, dtype=np.float64)
    for _ in range(int(num_sweeps)):
        ax_mag = a_abs @ np.abs(x)
        x = x + d * (b64 - a_s @ x)
        bound = bound + np.abs(d) * (np.abs(b64) + ax_mag + a_abs @ bound)
    terms = np.diff(a_s.indptr)
    tol = _SAFETY * _WORST_CASE_EPS * (terms + 8.0) * (bound + np.abs(x))
    _compare_vectors(kernel, np.asarray(x_out, dtype=np.float64), x, tol,
                     {"A": a, "x0": x0, "b": b, "x_out": x_out})
