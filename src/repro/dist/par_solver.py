"""Distributed AMG solve simulation (the Fig. 9 experiment).

The simulated multi-GPU run mirrors how HYPRE executes AMG on eight
GPUs: the hierarchy is built once (setup is identical across solver
configurations — Fig. 9 compares solve-dominated totals), every level's
operators are partitioned into ParCSR slices, and each V-cycle SpMV
becomes: halo exchange -> per-rank local SpMV (priced on the rank's own
device model) -> barrier.  The per-call simulated time is

``max over ranks (local kernel time) + halo exchange time``

so the configuration differences (HYPRE CSR kernels vs AmgT mBSR kernels,
FP64 vs mixed) act on the local-kernel term, while the communication term
is common — which is exactly why the paper's multi-GPU speedups (1.35x)
are lower than the single-GPU ones (1.32-1.46x): Amdahl on the comm share.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.amg.hierarchy import AMGHierarchy, SetupParams, amg_setup
from repro.dist.comm import CommCost, SimComm
from repro.dist.par_csr import ParCSRMatrix
from repro.dist.partition import RowPartition, partition_rows
from repro.formats.csr import CSRMatrix
from repro.gpu.cost import CostModel
from repro.gpu.counters import Precision
from repro.gpu.specs import DeviceSpec, get_device
from repro.hypre.csr_matrix import HypreCSRMatrix
from repro.kernels.baseline import csr_spmv
from repro.kernels.spmv import mbsr_spmv
from repro.obs import trace as obs_trace

__all__ = ["ParAMGSolver", "ParSolveReport"]


@dataclass
class ParSolveReport:
    """Simulated outcome of a distributed solve."""

    iterations: int
    converged: bool
    relative_residual: float
    local_kernel_us: float = 0.0
    comm_us: float = 0.0
    spmv_calls: int = 0

    @property
    def total_us(self) -> float:
        return self.local_kernel_us + self.comm_us


class ParAMGSolver:
    """AMG over simulated ranks with per-call comm + max-rank pricing."""

    def __init__(
        self,
        num_ranks: int = 8,
        backend: str = "amgt",
        device: str | DeviceSpec = "A100",
        precision: str = "fp64",
        comm_cost: CommCost | None = None,
        setup_params: SetupParams | None = None,
        checked: bool = False,
    ):
        if backend not in ("amgt", "hypre"):
            raise ValueError(f"unknown backend {backend!r}")
        if precision not in ("fp64", "mixed"):
            raise ValueError(f"unknown precision {precision!r}")
        self.num_ranks = int(num_ranks)
        if self.num_ranks < 1:
            raise ValueError("num_ranks must be >= 1")
        self.backend = backend
        self.device = device if isinstance(device, DeviceSpec) else get_device(device)
        self.cost = CostModel(self.device)
        self.precision_mode = precision
        self.comm = SimComm(self.num_ranks, comm_cost or CommCost())
        self.setup_params = setup_params or SetupParams()
        #: When True, setup/solve run under the :mod:`repro.check`
        #: contract checker (same effect as ``REPRO_CHECK=1``, scoped).
        self.checked = bool(checked)
        self.hierarchy: AMGHierarchy | None = None
        #: Per level, per operator: list of rank slices + wrapped locals.
        self._slices: list[dict[str, list[ParCSRMatrix]]] = []
        self._wrapped: dict[tuple[int, str, int, str], HypreCSRMatrix] = {}
        from repro.amg.precision import PrecisionSchedule

        if precision == "mixed":
            self.schedule = PrecisionSchedule.mixed(self.device)
        else:
            self.schedule = PrecisionSchedule.uniform(Precision.FP64)

    # ------------------------------------------------------------------
    def setup(self, a: CSRMatrix) -> "ParAMGSolver":
        """Build the hierarchy, then partition every level's operators.

        ``num_ranks`` may exceed a level's row count (coarse levels
        routinely have fewer rows than ranks); the surplus ranks own empty
        row ranges and the numerics are unchanged.
        """
        with obs_trace.span("ParAMGSolver.setup", "solver"):
            return self._setup_impl(a)

    def _setup_impl(self, a: CSRMatrix) -> "ParAMGSolver":
        from repro.check import runtime as check_runtime

        with check_runtime.checked_region(enabled=self.checked):
            self.hierarchy = amg_setup(a, self.setup_params)
        parts = [
            partition_rows(lvl.a.nrows, self.num_ranks) for lvl in self.hierarchy.levels
        ]
        if self.checked or check_runtime.is_active():
            from repro.check.structural import validate_partition

            for part, lvl in zip(parts, self.hierarchy.levels):
                validate_partition(part, lvl.a.nrows)
        self._slices = []
        for k, lvl in enumerate(self.hierarchy.levels):
            part = parts[k]
            entry: dict[str, object] = {"partition": part}
            entry["A"] = [
                ParCSRMatrix.from_global(lvl.a, part, r) for r in range(self.num_ranks)
            ]
            if lvl.r is not None:
                # R^k maps level k -> k+1: coarse rows, fine columns.
                cpart = parts[k + 1]
                entry["R"] = [
                    ParCSRMatrix.from_global(lvl.r, cpart, r, col_partition=part)
                    for r in range(self.num_ranks)
                ]
                entry["R_partition"] = cpart
            if lvl.p is not None:
                # P^k maps level k+1 -> k: fine rows, coarse columns.
                entry["P"] = [
                    ParCSRMatrix.from_global(lvl.p, part, r, col_partition=parts[k + 1])
                    for r in range(self.num_ranks)
                ]
            self._slices.append(entry)
        return self

    # ------------------------------------------------------------------
    def _wrapped_block(
        self, level: int, op: str, rank: int, block: str, csr: CSRMatrix
    ) -> HypreCSRMatrix:
        """Persistent wrapper per (level, op, rank, diag|offd) block.

        The wrapper's operator cache carries the mBSR form, the SpMV plan
        and the per-precision tile casts across the whole solve — one
        preprocessing per block, reused by every V-cycle SpMV that rank
        issues (the solve phase hits each block hundreds of times).
        """
        key = (level, op, rank, block)
        wrapped = self._wrapped.get(key)
        if wrapped is None:
            wrapped = HypreCSRMatrix(csr=csr)
            self._wrapped[key] = wrapped
        return wrapped

    def _local_spmv_us(
        self, level: int, op: str, sl: ParCSRMatrix, x_local, x_halo
    ) -> tuple[np.ndarray, float]:
        """Run + price one rank's local SpMV (diag and offd blocks)."""
        prec = self.schedule.for_level(level)
        total_us = 0.0
        if self.backend == "hypre":
            vendor = "cusparse" if self.device.vendor == "NVIDIA" else "rocsparse"
            y, rec = csr_spmv(sl.diag, x_local, Precision.FP64, backend=vendor)
            total_us += rec.price(self.cost)
            if sl.offd.nnz:
                y2, rec2 = csr_spmv(sl.offd, x_halo, Precision.FP64, backend=vendor)
                total_us += rec2.price(self.cost)
                y = y + y2
            return np.asarray(y, dtype=np.float64), total_us

        allow_tc = self.device.mma_shape_compatible
        wrapped = self._wrapped_block(level, op, sl.rank, "diag", sl.diag)
        m = wrapped.mbsr_at_precision(prec)
        y, rec = mbsr_spmv(m, np.asarray(x_local, dtype=np.float64), prec,
                           wrapped.spmv_plan(allow_tc), allow_tensor_cores=allow_tc)
        total_us += rec.price(self.cost)
        y = np.asarray(y, dtype=np.float64)
        if sl.offd.nnz:
            wrapped = self._wrapped_block(level, op, sl.rank, "offd", sl.offd)
            m = wrapped.mbsr_at_precision(prec)
            y2, rec2 = mbsr_spmv(m, np.asarray(x_halo, dtype=np.float64), prec,
                                 wrapped.spmv_plan(allow_tc),
                                 allow_tensor_cores=allow_tc)
            total_us += rec2.price(self.cost)
            y = y + np.asarray(y2, dtype=np.float64)
        return y, total_us

    def _par_spmv(self, level: int, op: str, x: np.ndarray, report: ParSolveReport) -> np.ndarray:
        """One distributed SpMV: halo exchange + max-over-ranks local time."""
        entry = self._slices[level]
        slices: list[ParCSRMatrix] = entry[op]
        prec = self.schedule.for_level(level)
        # Halo exchange: bytes each rank receives from each owner.
        bytes_matrix = np.zeros((self.num_ranks, self.num_ranks))
        for sl in slices:
            recv = sl.halo_bytes_from(itemsize=prec.itemsize)
            bytes_matrix[:, sl.rank] += recv
        report.comm_us += self.comm.exchange(bytes_matrix)

        # Local kernels, bulk-synchronous: the step takes as long as the
        # slowest rank.
        part: RowPartition = entry["R_partition"] if op == "R" else entry["partition"]
        y = np.zeros(part.n)
        worst = 0.0
        traced = obs_trace.is_active()
        for sl in slices:
            lo, hi = part.local_range(sl.rank)
            col_lo, col_hi = sl.col_partition.local_range(sl.rank)
            x_local = x[col_lo:col_hi]
            x_halo = sl.gather_halo(x)
            if traced:
                # Each rank's local kernel gets its own span, stamped with
                # the rank tag so exporters can lay ranks on separate rows.
                with obs_trace.TRACER.tagged(rank=sl.rank):
                    sp = obs_trace.TRACER.open(
                        "spmv", "kernel", {"phase": "solve", "level": level,
                                           "op": op},
                    )
                    with sp:
                        y_local, us = self._local_spmv_us(
                            level, op, sl, x_local, x_halo
                        )
                    if sp:
                        sp.set(sim_us=us, backend=self.backend)
            else:
                y_local, us = self._local_spmv_us(level, op, sl, x_local, x_halo)
            worst = max(worst, us)
            y[lo:hi] = y_local
        report.local_kernel_us += worst
        report.spmv_calls += 1
        from repro.check import runtime as check_runtime

        if check_runtime.is_active():
            from repro.check import oracle

            lvl = self.hierarchy.levels[level]
            global_op = {"A": lvl.a, "R": lvl.r, "P": lvl.p}[op]
            oracle.verify_distributed_spmv(
                global_op, x, y,
                Precision.FP64 if self.backend == "hypre" else prec,
                self.num_ranks,
            )
        return y

    # ------------------------------------------------------------------
    def setup_report(self) -> ParSolveReport:
        """Simulated cost of the *distributed* setup phase.

        The hierarchy itself is built serially (numerics are partition
        independent); this prices what the eight-GPU setup would cost:
        each level's three SpGEMMs split across ranks by block-row
        ownership (bulk-synchronous, so per-call time is the slowest
        rank's share scaled by the partition imbalance) plus the halo
        broadcast of B-rows that a distributed SpGEMM performs before
        multiplying.
        """
        if self.hierarchy is None:
            raise RuntimeError("setup() must run before setup_report()")
        from repro.formats.convert import csr_to_mbsr
        from repro.gpu.counters import Precision
        from repro.kernels.baseline import csr_spgemm
        from repro.kernels.spgemm import mbsr_spgemm

        report = ParSolveReport(iterations=0, converged=True, relative_residual=0.0)
        vendor = "cusparse" if self.device.vendor == "NVIDIA" else "rocsparse"
        for k, lvl in enumerate(self.hierarchy.levels[:-1]):
            prec = self.schedule.for_level(k)
            # The two Galerkin products; the interpolation-internal
            # SpGEMM operates on F-F/F-C slices of A of comparable size,
            # which the A @ P pair covers at this model's granularity.
            pairs = [(lvl.r, lvl.a), (lvl.a, lvl.p)]
            for left, right in pairs:
                if self.backend == "hypre":
                    _, rec = csr_spgemm(left, right, Precision.FP64,
                                        backend=vendor)
                else:
                    lm, rm = csr_to_mbsr(left), csr_to_mbsr(right)
                    _, rec = mbsr_spgemm(lm, rm, prec)
                    if not self.device.mma_shape_compatible:
                        mma = rec.counters.mma_issues[prec]
                        rec.counters.mma_issues[prec] = 0.0
                        rec.counters.add_flops(prec, mma * 2 * 2 * 64.0)
                serial_us = rec.price(self.cost)
                # per-rank share + ragged-partition imbalance
                report.local_kernel_us += serial_us / self.num_ranks * 1.1
                # halo broadcast: each rank fetches the external B rows it
                # multiplies against (~ (p-1)/p of B's entries touched once)
                halo_bytes = right.nnz * 12.0 * (self.num_ranks - 1) / max(
                    self.num_ranks, 1
                )
                bpp = np.zeros((self.num_ranks, self.num_ranks))
                per_pair = halo_bytes / max(self.num_ranks * (self.num_ranks - 1), 1)
                bpp[:] = per_pair
                np.fill_diagonal(bpp, 0.0)
                report.comm_us += self.comm.exchange(bpp)
        return report

    # ------------------------------------------------------------------
    def solve_pcg(
        self,
        b: np.ndarray,
        max_iterations: int = 200,
        tolerance: float = 1e-8,
    ) -> tuple[np.ndarray, ParSolveReport]:
        """Distributed PCG preconditioned by one distributed V-cycle.

        Both the outer matvec and the preconditioner run through the
        per-rank kernels and the halo-exchange cost model, plus the two
        dot-product allreduces per PCG iteration that the distributed
        algorithm requires.
        """
        if self.hierarchy is None:
            raise RuntimeError("setup() must run before solve_pcg()")
        with obs_trace.span("ParAMGSolver.solve_pcg", "solver"):
            return self._solve_pcg_impl(b, max_iterations, tolerance)

    def _solve_pcg_impl(
        self, b: np.ndarray, max_iterations: int, tolerance: float
    ) -> tuple[np.ndarray, ParSolveReport]:
        from repro.amg.cycle import SolveParams, SolveStats, mg_cycle
        from repro.solvers import pcg

        report = ParSolveReport(iterations=0, converged=False, relative_residual=1.0)

        def spmv(level: int, op: str, x: np.ndarray) -> np.ndarray:
            return self._par_spmv(level, op, x, report)

        def matvec(v: np.ndarray) -> np.ndarray:
            return spmv(0, "A", v)

        def precondition(r: np.ndarray) -> np.ndarray:
            stats = SolveStats()
            return mg_cycle(self.hierarchy, np.asarray(r, dtype=np.float64),
                            np.zeros(self.hierarchy.levels[0].n), spmv,
                            SolveParams(), stats)

        result = pcg(matvec, b, preconditioner=precondition,
                     tolerance=tolerance, max_iterations=max_iterations)
        report.iterations = result.iterations
        report.converged = result.converged
        report.relative_residual = result.final_relative_residual
        # Two dot-product allreduces per iteration + residual norms.
        for _ in range(2 * max(result.iterations, 1) + 1):
            report.comm_us += self.comm.allreduce_us(8.0)
        return result.x, report

    # ------------------------------------------------------------------
    def solve(
        self,
        b: np.ndarray,
        max_iterations: int = 50,
        tolerance: float = 0.0,
    ) -> tuple[np.ndarray, ParSolveReport]:
        """Distributed V-cycles; numerics match the single-device solve.

        The default ``tolerance=0.0`` is *paper mode*: all
        ``max_iterations`` cycles run (Fig. 9 times fixed-cycle solves),
        and ``report.converged`` still reports True when the residual
        reaches the requested tolerance or underflows the float64
        machine-precision floor ``norm0 * eps``.  Pass a positive
        *tolerance* to also stop early.
        """
        if self.hierarchy is None:
            raise RuntimeError("setup() must run before solve()")
        with obs_trace.span("ParAMGSolver.solve", "solver"):
            return self._solve_impl(b, max_iterations, tolerance)

    def _solve_impl(
        self, b: np.ndarray, max_iterations: int, tolerance: float
    ) -> tuple[np.ndarray, ParSolveReport]:
        from repro.amg.cycle import SolveParams, amg_solve
        from repro.check import runtime as check_runtime

        report = ParSolveReport(iterations=0, converged=False, relative_residual=1.0)

        def spmv(level: int, op: str, x: np.ndarray) -> np.ndarray:
            return self._par_spmv(level, op, x, report)

        with check_runtime.checked_region(enabled=self.checked):
            x, stats = amg_solve(
                self.hierarchy, b,
                spmv=spmv,
                params=SolveParams(max_iterations=max_iterations, tolerance=tolerance),
            )
        report.iterations = stats.iterations
        report.converged = stats.converged
        report.relative_residual = stats.final_relative_residual
        # Residual-norm allreduce once per iteration.
        for _ in range(max(stats.iterations, 1) + 1):
            report.comm_us += self.comm.allreduce_us(8.0)
        return x, report
