"""Row partitioning for the simulated multi-GPU runs."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RowPartition", "partition_rows"]


@dataclass(frozen=True)
class RowPartition:
    """Contiguous row-block ownership, hypre style.

    ``starts`` has length ``num_ranks + 1``; rank r owns rows
    ``[starts[r], starts[r+1])`` (and the matching columns for square
    matrices).
    """

    starts: np.ndarray

    @property
    def num_ranks(self) -> int:
        return self.starts.shape[0] - 1

    @property
    def n(self) -> int:
        return int(self.starts[-1])

    def owner_of(self, index: int | np.ndarray):
        """Rank(s) owning global row/column *index*."""
        return np.searchsorted(self.starts, index, side="right") - 1

    def local_size(self, rank: int) -> int:
        return int(self.starts[rank + 1] - self.starts[rank])

    def local_range(self, rank: int) -> tuple[int, int]:
        return int(self.starts[rank]), int(self.starts[rank + 1])


def partition_rows(n: int, num_ranks: int) -> RowPartition:
    """Balanced contiguous partition of *n* rows over *num_ranks* ranks."""
    if num_ranks < 1:
        raise ValueError("num_ranks must be positive")
    if n < 0:
        raise ValueError("n must be non-negative")
    base, rem = divmod(n, num_ranks)
    sizes = np.full(num_ranks, base, dtype=np.int64)
    sizes[:rem] += 1
    starts = np.zeros(num_ranks + 1, dtype=np.int64)
    np.cumsum(sizes, out=starts[1:])
    return RowPartition(starts)
