"""Multi-GPU simulation layer (the Fig. 9 experiment).

AmgT inherits HYPRE's distributed execution: matrices are partitioned into
contiguous row blocks (one per GPU), each rank stores a *diag* block (the
columns it owns) and an *offd* block (external columns, hypre's ParCSR
layout), and every SpMV performs a halo exchange of the needed x entries
before the local kernels run.

Without eight A100s we simulate the ranks in-process: the local kernels are
the same simulated kernels as the single-GPU path (each priced on its own
device cost model), and :class:`repro.dist.comm.SimComm` prices messages
with an alpha-beta (latency + bytes/bandwidth) model of NVLink-class
links.  Per-step simulated time is ``max over ranks of local time + comm
time`` — the bulk-synchronous bound HYPRE's data flow obeys.
"""

from repro.dist.partition import RowPartition, partition_rows
from repro.dist.comm import SimComm, CommCost
from repro.dist.par_csr import ParCSRMatrix
from repro.dist.par_solver import ParAMGSolver, ParSolveReport

__all__ = [
    "RowPartition",
    "partition_rows",
    "SimComm",
    "CommCost",
    "ParCSRMatrix",
    "ParAMGSolver",
    "ParSolveReport",
]
