"""Simulated inter-GPU communication with an alpha-beta cost model.

Every halo exchange is priced as ``alpha + bytes / beta`` per message,
with the per-step communication time taken as the maximum over ranks of
their posted message costs (bulk-synchronous neighbour exchange).  The
default constants approximate NVLink/NVSwitch-class links between eight
A100s (a few microseconds of latency, ~200 GB/s effective per-pair
bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["CommCost", "SimComm"]


@dataclass(frozen=True)
class CommCost:
    """Alpha-beta link model.

    Real NVLink-class message latency is several microseconds; like the
    kernel-launch overhead (see ``DeviceSpec.launch_overhead_us``), the
    default alpha is scaled down by the reproduction's 30-100x matrix
    scale factor so the communication-to-computation ratio of the paper's
    eight-A100 testbed is preserved at laptop problem sizes.
    """

    #: Per-message latency in microseconds (scaled; see class docstring).
    alpha_us: float = 0.15
    #: Effective point-to-point bandwidth in bytes per microsecond
    #: (200 GB/s = 2.0e5 B/us).
    beta_bytes_per_us: float = 2.0e5

    def message_us(self, nbytes: float) -> float:
        if nbytes <= 0:
            return 0.0
        return self.alpha_us + nbytes / self.beta_bytes_per_us


@dataclass
class SimComm:
    """Accumulates the simulated communication time of a distributed run."""

    num_ranks: int
    cost: CommCost = field(default_factory=CommCost)
    total_comm_us: float = 0.0
    messages: int = 0
    bytes_moved: float = 0.0

    def exchange(self, bytes_per_pair: np.ndarray) -> float:
        """One neighbour exchange step.

        ``bytes_per_pair[src, dst]`` is the payload from rank *src* to rank
        *dst*.  Messages of one exchange overlap (non-blocking sends/recvs
        posted together), so a rank's cost is one latency term plus its
        aggregate send+receive volume at link bandwidth; the step time is
        the maximum over ranks — what a bulk-synchronous halo exchange
        waits for.
        """
        bpp = np.asarray(bytes_per_pair, dtype=np.float64)
        if bpp.shape != (self.num_ranks, self.num_ranks):
            raise ValueError(
                f"expected ({self.num_ranks}, {self.num_ranks}) byte matrix, got {bpp.shape}"
            )
        np.fill_diagonal(bpp, 0.0)
        sent = bpp.sum(axis=1)
        received = bpp.sum(axis=0)
        volume = sent + received
        active = volume > 0
        per_rank = np.where(active, self.cost.alpha_us, 0.0) + (
            volume / self.cost.beta_bytes_per_us
        )
        self.messages += int(np.count_nonzero(bpp))
        self.bytes_moved += float(bpp.sum())
        step = float(per_rank.max()) if self.num_ranks else 0.0
        self.total_comm_us += step
        return step

    def allreduce_us(self, nbytes: float) -> float:
        """Price one allreduce (ring model: 2 * (p-1) message steps)."""
        steps = 2 * max(self.num_ranks - 1, 0)
        t = steps * self.cost.message_us(max(nbytes / max(self.num_ranks, 1), 1.0))
        self.total_comm_us += t
        self.messages += steps
        self.bytes_moved += nbytes
        return t
