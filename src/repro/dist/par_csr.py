"""ParCSR matrices: hypre's distributed layout, simulated in-process.

Each rank stores two local CSR blocks of its row slice:

* ``diag`` — the columns the rank owns (square for square operators);
* ``offd`` — the external columns, compressed through ``col_map_offd``
  (the sorted list of global columns the rank actually touches).

A distributed SpMV gathers the ``col_map_offd`` entries of x from their
owners (the halo exchange), then runs one local SpMV per block — which is
exactly what HYPRE's ``hypre_ParCSRMatrixMatvec`` does, and why AmgT's
single-GPU kernel gains carry over to the multi-GPU setting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dist.partition import RowPartition
from repro.formats.csr import CSRMatrix

__all__ = ["ParCSRMatrix"]


@dataclass
class ParCSRMatrix:
    """One rank's slice of a distributed matrix.

    Square operators (the level matrices A) share one partition for rows
    and columns; rectangular operators (R maps fine to coarse, P coarse to
    fine) carry distinct row and column partitions, as hypre's ParCSR does.
    """

    rank: int
    row_partition: RowPartition
    col_partition: RowPartition
    #: Local rows x owned columns.
    diag: CSRMatrix
    #: Local rows x len(col_map_offd) external columns.
    offd: CSRMatrix
    #: Global column index of each offd column, ascending.
    col_map_offd: np.ndarray

    @classmethod
    def from_global(
        cls,
        a: CSRMatrix,
        partition: RowPartition,
        rank: int,
        col_partition: RowPartition | None = None,
    ) -> "ParCSRMatrix":
        """Slice the global matrix *a* into rank *rank*'s ParCSR blocks."""
        col_partition = col_partition or partition
        if partition.n != a.nrows or col_partition.n != a.ncols:
            raise ValueError(
                f"partition sizes ({partition.n}, {col_partition.n}) do not "
                f"match the matrix shape {a.shape}"
            )
        lo, hi = partition.local_range(rank)
        clo, chi = col_partition.local_range(rank)
        local = a.extract_rows(np.arange(lo, hi, dtype=np.int64))
        rows = local.row_ids()
        cols = local.indices
        vals = local.data
        own = (cols >= clo) & (cols < chi)

        diag = CSRMatrix.from_coo(
            rows[own], cols[own] - clo, vals[own], (hi - lo, chi - clo),
            sum_duplicates=False,
        )
        ext_cols = cols[~own]
        col_map = np.unique(ext_cols)
        remap = np.searchsorted(col_map, ext_cols)
        offd = CSRMatrix.from_coo(
            rows[~own], remap, vals[~own], (hi - lo, col_map.shape[0]),
            sum_duplicates=False,
        )
        return cls(rank=rank, row_partition=partition, col_partition=col_partition,
                   diag=diag, offd=offd, col_map_offd=col_map)

    @property
    def local_nrows(self) -> int:
        return self.diag.nrows

    @property
    def nnz(self) -> int:
        return self.diag.nnz + self.offd.nnz

    def halo_bytes_from(self, itemsize: int = 8) -> np.ndarray:
        """Bytes this rank must receive from each other rank per SpMV."""
        owners = self.col_partition.owner_of(self.col_map_offd)
        counts = np.bincount(owners, minlength=self.col_partition.num_ranks)
        counts[self.rank] = 0
        return counts.astype(np.float64) * itemsize

    def gather_halo(self, x_global: np.ndarray) -> np.ndarray:
        """The x entries of the halo (simulation reads them directly)."""
        return x_global[self.col_map_offd]

    def local_matvec(self, x_local: np.ndarray, x_halo: np.ndarray) -> np.ndarray:
        """Reference local SpMV: ``diag @ x_local + offd @ x_halo``."""
        y = self.diag.matvec(x_local)
        if self.offd.nnz:
            y = y + self.offd.matvec(x_halo)
        return y
