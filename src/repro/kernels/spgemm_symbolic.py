"""SpGEMM step 2: two-step hash-based symbolic phase (Alg. 3).

For every block-row of C a hash table (sized by the row's bin) collects the
block-column indices produced by the row.  A candidate tile (i, j) exists
when some tile (i, k) of A meets a tile (k, j) of B *and* the bitmap product
of the two tiles is nonzero — the bitmap test prunes pairs whose numeric
product would be structurally zero, which plain BSR cannot do.

* **Step 1** counts distinct surviving column indices per block-row; a
  prefix sum over the counts yields ``BlcPtrC`` and the total tile count,
  which sizes the allocations of ``BlcIdxC`` / ``BlcMapC`` / ``BlcValC``.
* **Step 2** re-runs the hash inserts, compresses and sorts each table, and
  writes ``BlcIdxC``.

The implementation is vectorised over all candidate pairs at once: the
per-row hash tables become a segmented distinct-count/distinct-sort (see
:mod:`repro.util.hashing`, whose scalar :class:`~repro.util.hashing.HashTable`
is the executable specification the vectorised path is tested against).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.formats.bitmap import bitmap_multiply
from repro.formats.mbsr import MBSRMatrix
from repro.gpu.counters import KernelCounters
from repro.kernels.spgemm_analysis import AnalysisResult
from repro.util.hashing import distinct_count_per_segment, distinct_sorted_per_segment
from repro.util.prefix_sum import counts_to_ptr

__all__ = ["SymbolicResult", "expand_candidate_pairs", "symbolic_spgemm"]


@dataclass
class SymbolicResult:
    """Structure of C plus the surviving candidate pair lists.

    The numeric phase re-uses the pair lists (``pair_a``, ``pair_b``,
    ``pair_map``) instead of re-deriving them, mirroring how the GPU kernel
    keeps the hash tables of step 2 around for the numeric pass.
    """

    blc_ptr_c: np.ndarray
    blc_idx_c: np.ndarray
    #: Index into A's tile arrays per surviving candidate pair.
    pair_a: np.ndarray
    #: Index into B's tile arrays per surviving candidate pair.
    pair_b: np.ndarray
    #: Bitmap product per surviving pair.
    pair_map: np.ndarray
    #: Block-row of C per surviving pair.
    pair_row: np.ndarray
    counters: KernelCounters
    #: Memoised numeric-phase geometry (see :meth:`locate_pairs`).
    _pair_cols: np.ndarray | None = None
    _pair_pos: np.ndarray | None = None

    @property
    def blc_num_c(self) -> int:
        return int(self.blc_ptr_c[-1])

    def locate_pairs(self, mat_b: MBSRMatrix) -> tuple[np.ndarray, np.ndarray]:
        """Per-pair B-tile columns and output tile positions, memoised.

        Both arrays depend only on the operands' sparsity patterns, so a
        plan that replays this symbolic result (``reuse_plan`` /
        :class:`~repro.kernels.setup_cache.SetupPlanCache`) computes them
        exactly once; every later numeric pass starts straight at the
        value math.
        """
        if self._pair_pos is None:
            from repro.kernels.spgemm_numeric import locate_output_tiles

            cols = mat_b.blc_idx[self.pair_b]
            pos = locate_output_tiles(self, cols, mat_b.nb)
            cols.setflags(write=False)
            pos.setflags(write=False)
            self._pair_cols, self._pair_pos = cols, pos
        return self._pair_cols, self._pair_pos


def expand_candidate_pairs(
    mat_a: MBSRMatrix, mat_b: MBSRMatrix, rows: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All (tileA, tileB) index pairs visited by the row-wise traversal.

    Returns ``(pair_a, pair_b, pair_row)``: for each tile ``p`` of A with
    block-column ``k``, every tile of B's block-row ``k`` forms a pair, and
    the pair lands in the block-row of C that owns tile ``p``.

    ``rows`` (sorted block-row ids of A) restricts the traversal to those
    block-rows — the dirty-row replay of the incremental setup patcher.
    ``pair_a`` / ``pair_b`` still index the *full* operand tile arrays
    (the restriction selects rows, it does not renumber tiles), while
    ``pair_row`` becomes the compact position within ``rows``.  Within
    every selected block-row the pair order is identical to the full
    traversal, which is what makes a row-restricted numeric phase
    bit-identical to the corresponding rows of the full product.
    """
    if rows is None:
        tiles = np.arange(mat_a.blc_num, dtype=np.int64)
        row_of_tile = mat_a.block_row_ids()
    else:
        rows = np.asarray(rows, dtype=np.int64)
        tile_counts = mat_a.blc_ptr[rows + 1] - mat_a.blc_ptr[rows]
        total_tiles = int(tile_counts.sum())
        tile_starts = counts_to_ptr(tile_counts)[:-1]
        tiles = (
            np.repeat(mat_a.blc_ptr[rows], tile_counts)
            + np.arange(total_tiles, dtype=np.int64)
            - np.repeat(tile_starts, tile_counts)
        )
        row_of_tile = np.repeat(
            np.arange(rows.shape[0], dtype=np.int64), tile_counts
        )
    colA = mat_a.blc_idx[tiles]
    b_counts = np.diff(mat_b.blc_ptr)
    per_tile = b_counts[colA]
    pair_a = np.repeat(tiles, per_tile)
    total = int(per_tile.sum())
    # Within-pair offsets: ranges [0, per_tile[t]) concatenated.
    starts = counts_to_ptr(per_tile)[:-1]
    within = np.arange(total, dtype=np.int64) - np.repeat(starts, per_tile)
    pair_b = np.repeat(mat_b.blc_ptr[colA], per_tile) + within
    pair_row = np.repeat(row_of_tile, per_tile)
    return pair_a, pair_b, pair_row


def symbolic_spgemm(
    mat_a: MBSRMatrix,
    mat_b: MBSRMatrix,
    analysis: AnalysisResult,
    rows: np.ndarray | None = None,
) -> SymbolicResult:
    """Run the two-step symbolic phase; returns the structure of C.

    With ``rows`` (sorted block-row ids of A) the result describes only
    those block-rows of C, compacted: ``blc_ptr_c`` has ``len(rows) + 1``
    entries and ``pair_row`` holds positions within ``rows``, while the
    pair lists keep indexing the full operand tile arrays.  Each selected
    block-row's structure and pair order are bit-identical to the same
    block-row of the unrestricted result.
    """
    counters = KernelCounters()
    pair_a, pair_b, pair_row = expand_candidate_pairs(mat_a, mat_b, rows)
    out_rows = mat_a.mb if rows is None else int(np.asarray(rows).shape[0])

    # BITMAPMULTIPLY prunes structurally-zero products (Alg. 3 lines 7-8).
    n_candidates = pair_a.shape[0]
    map_c = bitmap_multiply(mat_a.blc_map[pair_a], mat_b.blc_map[pair_b])
    keep = map_c != 0
    pair_a, pair_b, pair_row, map_c = (
        pair_a[keep],
        pair_b[keep],
        pair_row[keep],
        map_c[keep],
    )

    cols = mat_b.blc_idx[pair_b]
    # Segment the surviving pairs by block-row of C.  The pairs are already
    # grouped by row (the expansion walks A row-wise), so a bincount gives
    # the segment pointer directly.
    seg_counts = np.bincount(pair_row, minlength=out_rows)
    seg_ptr = counts_to_ptr(seg_counts)

    # Step 1: count distinct columns per block-row -> BlcPtrC by prefix sum.
    row_nnz = distinct_count_per_segment(cols, seg_ptr)
    blc_ptr_c = counts_to_ptr(row_nnz)

    # Step 2: hash again, compress and sort -> BlcIdxC.
    blc_idx_c, check_ptr = distinct_sorted_per_segment(cols, seg_ptr)
    if not np.array_equal(check_ptr, blc_ptr_c):
        raise AssertionError("symbolic step 2 disagrees with step 1")

    # Cost accounting: each of the n_candidates pre-filter pairs reads two
    # bitmaps and does one bitmap product (~a handful of bit ops, modelled
    # as 16 integer ops on the scalar cores at fp32 rate); only the
    # surviving pairs pay hash inserts (integer work too).
    n_survivors = pair_a.shape[0]
    from repro.gpu.counters import Precision

    counters.add_flops(Precision.FP32, 16.0 * n_candidates + 8.0 * n_survivors)
    counters.add_bytes(
        read=n_candidates * (2 + 8) * 2,  # bitmaps + indices of both tiles
        written=blc_ptr_c.shape[0] * 8 + blc_idx_c.shape[0] * 8,
    )
    counters.launches = 2  # one launch per symbolic step

    return SymbolicResult(
        blc_ptr_c=blc_ptr_c,
        blc_idx_c=blc_idx_c,
        pair_a=pair_a,
        pair_b=pair_b,
        pair_map=map_c,
        pair_row=pair_row,
        counters=counters,
    )
