"""Per-kernel-call records consumed by the perf layer."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.counters import KernelCounters, Precision

__all__ = ["KernelRecord"]


@dataclass
class KernelRecord:
    """What one simulated kernel call did and what it cost.

    ``sim_time_us`` is filled in by the caller once a device/cost model is
    chosen; the kernels themselves are device-independent and only record
    the work.
    """

    kernel: str
    backend: str
    precision: Precision
    counters: KernelCounters = field(default_factory=KernelCounters)
    #: Free-form detail (e.g. which execution paths fired).
    detail: dict = field(default_factory=dict)
    sim_time_us: float = 0.0
    level: int = -1
    phase: str = ""
    #: Cost-model class used at pricing time; stored so a recorded run can
    #: be re-priced on a different device (e.g. one NVIDIA execution priced
    #: for both A100 and H100).
    kernel_class: str = ""

    def price(self, cost_model, kernel_class: str | None = None) -> float:
        """Compute and store the simulated time on *cost_model*."""
        cls = kernel_class or self.kernel_class or f"{self.backend}_{self.kernel}"
        self.kernel_class = cls
        self.sim_time_us = cost_model.kernel_time_us(self.counters, cls)
        return self.sim_time_us
