"""The mBSR SpMV of Sec. IV.D: adaptive, load-balanced, hybrid.

Preprocessing (once per matrix, reused for every SpMV on it — AmgT calls
SpMV hundreds of times per matrix during the solve phase) computes:

* ``variation`` — the coefficient of variation of tiles per block-row; when
  the distribution is unbalanced, the *load-balanced* schedule assigns a
  fixed 64 tiles to every warp (``WARP_CAPACITY``) and multiple warps
  cooperate on long rows; otherwise one warp owns one block-row.
* ``avg_nnz_blc`` — average nonzeros per tile; at >= 10 the tensor-core
  kernel runs (two tiles per MMA, Fig. 5), below it the CUDA-core kernel
  (four threads per tile, one row each, Alg. 5).

The numeric result is identical between schedules; the schedule changes the
*imbalance factor* the cost model applies, and the core choice changes which
throughput ceiling prices the work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.check import runtime as check_runtime
from repro.formats.bitmap import BLOCK_SIZE, TC_NNZ_THRESHOLD, TILE_SLOTS
from repro.obs import trace as obs_trace
from repro.obs import names as obs_names
from repro.formats.mbsr import MBSRMatrix
from repro.gpu.counters import Precision, effective_value_bytes
from repro.kernels.record import KernelRecord
from repro.util.segops import segment_sum

__all__ = [
    "WARP_CAPACITY",
    "VARIATION_THRESHOLD",
    "SpMVPlan",
    "SpMVBinding",
    "SpMMBinding",
    "build_spmv_plan",
    "bind_spmv",
    "bind_spmm",
    "mbsr_spmv",
    "mbsr_spmm",
]

#: Tiles per warp under the load-balanced schedule (Sec. IV.D.1).
WARP_CAPACITY = 64

#: Coefficient-of-variation threshold above which the load-balanced
#: schedule is selected.  Stencil/FEM matrices sit well below 0.3; graph
#: matrices with hub rows (power networks) sit near or above 1.
VARIATION_THRESHOLD = 0.5


@dataclass
class SpMVPlan:
    """Preprocessing result: schedule + core selection for one matrix."""

    variation: float
    avg_nnz_blc: float
    load_balanced: bool
    use_tensor_cores: bool
    #: Imbalance factor of the chosen schedule (>= 1).
    imbalance: float
    #: Number of warps the schedule launches.
    num_warps: int
    #: MMA issues per SpMV call under the TC path (0 for the CUDA path).
    mma_issues: int

    @property
    def kernel_path(self) -> str:
        core = "tc" if self.use_tensor_cores else "cuda"
        sched = "balanced" if self.load_balanced else "row-warp"
        return f"{core}/{sched}"


def build_spmv_plan(
    mat: MBSRMatrix,
    *,
    allow_tensor_cores: bool = True,
    tc_threshold: float = TC_NNZ_THRESHOLD,
) -> SpMVPlan:
    """Data preprocessing: pick the schedule and the compute cores."""
    per_row = mat.blocks_per_row().astype(np.float64)
    blc_num = mat.blc_num
    if blc_num == 0 or mat.mb == 0:
        return SpMVPlan(0.0, 0.0, False, False, 1.0, 0, 0)
    mean = per_row.mean()
    variation = float(per_row.std() / mean) if mean > 0 else 0.0
    avg_nnz_blc = mat.avg_nnz_blc
    load_balanced = variation > VARIATION_THRESHOLD
    use_tc = allow_tensor_cores and avg_nnz_blc >= tc_threshold

    if load_balanced:
        # Fixed 64 tiles per warp: the only imbalance left is the ragged
        # final warp.
        num_warps = max(1, -(-blc_num // WARP_CAPACITY))
        work = np.full(num_warps, WARP_CAPACITY, dtype=np.float64)
        work[-1] = blc_num - WARP_CAPACITY * (num_warps - 1)
        imbalance = float(work.max() / work.mean())
    else:
        # One warp per block-row: imbalance is the row-length skew.
        num_warps = mat.mb
        nonzero_rows = per_row[per_row > 0]
        if nonzero_rows.size:
            imbalance = float(per_row.max() / per_row.mean())
        else:
            imbalance = 1.0

    if use_tc:
        # Two tiles per MMA issue within each warp (Fig. 5); odd warps
        # waste half an issue.
        if load_balanced:
            full, rem = divmod(blc_num, WARP_CAPACITY)
            mma = full * (WARP_CAPACITY // 2) + (rem + 1) // 2
        else:
            mma = int(np.sum((per_row.astype(np.int64) + 1) // 2))
    else:
        mma = 0
    return SpMVPlan(
        variation=variation,
        avg_nnz_blc=avg_nnz_blc,
        load_balanced=load_balanced,
        use_tensor_cores=use_tc,
        imbalance=max(imbalance, 1.0),
        num_warps=num_warps,
        mma_issues=mma,
    )


def _padded_x(mat: MBSRMatrix, x: np.ndarray, dtype) -> np.ndarray:
    xp = np.zeros(mat.nb * BLOCK_SIZE, dtype=dtype)
    xp[: mat.ncols] = x
    return xp


def _account_spmv(
    record: KernelRecord,
    mat: MBSRMatrix,
    plan: SpMVPlan,
    precision: Precision,
    storage_itemsize: int | None,
) -> None:
    """Fill *record* with the cost of one SpMV on *mat* under *plan*.

    The counters depend only on the operator, the plan and the precision —
    never on ``x`` — which is what lets a tape binding price its record
    once at bind time and replay it per call.
    """
    counters = record.counters
    acc_dtype = precision.accum_dtype
    nnz = mat.nnz
    itemsize = storage_itemsize or precision.itemsize
    if plan.use_tensor_cores:
        counters.add_mma(precision, plan.mma_issues)
        # fragA: two dense tiles per issue; fragB: replicated x slices.
        counters.add_bytes(
            read=effective_value_bytes(mat.blc_num * TILE_SLOTS * itemsize, itemsize)
        )
    else:
        # Thread-level path: one FMA per stored nonzero, plus the bitmap
        # bit-walk and index arithmetic around it (pipeline overhead).
        # Value traffic is sector-granular (~2x the raw gathered bytes),
        # capped at streaming the whole contiguous tile.
        from repro.gpu.counters import (
            SCALAR_GATHER_OVERHEAD,
            SCALAR_PIPELINE_OVERHEAD,
        )

        counters.add_flops(precision, 2.0 * nnz * SCALAR_PIPELINE_OVERHEAD)
        value_bytes = min(
            float(nnz) * itemsize * SCALAR_GATHER_OVERHEAD,
            float(mat.blc_num) * TILE_SLOTS * itemsize,
        )
        counters.add_bytes(read=effective_value_bytes(value_bytes, itemsize))
    # Index structures + bitmaps + x gather + y write.
    counters.add_bytes(
        read=mat.blc_num * (8 + 2) + (mat.mb + 1) * 8
        + effective_value_bytes(mat.blc_num * BLOCK_SIZE * itemsize, itemsize),
        written=mat.nrows * max(acc_dtype().itemsize, itemsize),
    )
    counters.imbalance = plan.imbalance
    counters.launches = 1
    record.detail = {"path": plan.kernel_path, "variation": plan.variation}


def mbsr_spmv(
    mat: MBSRMatrix,
    x: np.ndarray,
    precision: Precision = Precision.FP64,
    plan: SpMVPlan | None = None,
    *,
    allow_tensor_cores: bool = True,
    tc_threshold: float | None = None,
    storage_itemsize: int | None = None,
) -> tuple[np.ndarray, KernelRecord]:
    """Compute ``y = A @ x`` with the adaptive mBSR kernel.

    Returns ``y`` in the accumulator dtype of *precision* and the kernel
    record.  Pass a prebuilt *plan* to skip preprocessing on repeated
    calls; without one, the memoised per-operator plan is built with the
    caller's *tc_threshold* (``None`` = the paper's ``TC_NNZ_THRESHOLD``)
    — the threshold used to be hard-wired here, silently discarding any
    non-default core-selection point.  ``storage_itemsize`` overrides the
    per-value byte size charged for memory traffic: devices whose
    low-precision path computes in reduced precision but keeps
    FP64-resident data (the MI210 configuration of Sec. V.F) pass 8 here,
    which is what makes mixed precision a wash there.
    """
    x = np.asarray(x)
    if x.shape != (mat.ncols,):
        raise ValueError(f"x has shape {x.shape}, expected ({mat.ncols},)")
    cache = mat.cache
    if plan is None:
        plan = cache.spmv_plan(allow_tensor_cores, tc_threshold=tc_threshold)

    record = KernelRecord(kernel="spmv", backend="amgt", precision=precision)
    in_dtype = precision.np_dtype
    acc_dtype = precision.accum_dtype

    if mat.blc_num:
        xq = np.asarray(x, dtype=in_dtype)
        if mat.ncols == mat.nb * BLOCK_SIZE:
            xp = xq  # already 4-aligned: gather straight from x
        else:
            xp = _padded_x(mat, xq, in_dtype)
        # Gather the 4-vector of x per tile (cached flat indices), batched
        # tile matvec, segmented reduction into y — the same dataflow as
        # both device kernels, with the precision semantics of the selected
        # core type.  The tile values arrive quantised-and-widened from the
        # operator cache (one cast per matrix, not two per call).
        xblk = xp[cache.x_gather]  # (blc_num, 4)
        if xblk.dtype != acc_dtype:
            xblk = xblk.astype(acc_dtype)
        tiles = cache.tiles(in_dtype, acc_dtype)
        contrib = np.matmul(tiles, xblk[:, :, None])[:, :, 0]
        y = segment_sum(
            contrib, cache.block_row_ids, mat.mb,
            sorted_ids=True, flat_ids=cache.y_scatter,
        ).reshape(-1)
    else:
        y = np.zeros(mat.mb * BLOCK_SIZE, dtype=acc_dtype)

    _account_spmv(record, mat, plan, precision, storage_itemsize)
    y = y[: mat.nrows]
    # Output-dtype pin: both the segment-sum path and the blc_num == 0
    # early exit must hand back the accumulator dtype, or mixed-precision
    # callers silently lose (or fabricate) precision downstream.
    assert y.dtype == acc_dtype, (
        f"mbsr_spmv produced {y.dtype}, expected accumulator {acc_dtype}"
    )
    if check_runtime.is_active():
        from repro.check import oracle

        oracle.verify_spmv(mat, x, y, precision, plan)
    if obs_trace.is_active():
        from repro.obs import metrics as obs_metrics

        obs_metrics.REGISTRY.counter(
            obs_names.SPMV_DISPATCH,
            core="tc" if plan.use_tensor_cores else "cuda",
            schedule="balanced" if plan.load_balanced else "row-warp",
        ).inc()
        obs_metrics.REGISTRY.histogram(
            obs_names.SPMV_TILE_POPCOUNT,
            buckets=obs_metrics.POP_BUCKETS,
            kernel="spmv",
        ).observe_counts(cache.pop_hist)
    return y, record


@dataclass
class SpMVBinding:
    """A fully-resolved, replayable SpMV — the tape's plan handle.

    ``run(x)`` returns a fresh float64 vector bit-identical to
    ``np.asarray(mbsr_spmv(mat, x, precision, plan)[0], dtype=np.float64)``
    with every per-call decision already taken: the TC/CUDA plan, the
    quantised-and-widened tile array, the gather/scatter index arrays and
    the precision casts are all captured at bind time, so a replay is just
    gather -> batched tile matvec -> bincount.  The internal gather and
    contribution buffers are reused across calls (the returned vector
    never aliases them), which makes a binding single-threaded by
    contract.

    ``record`` is the unpriced cost template of one call — identical
    counters to the record :func:`mbsr_spmv` would produce, built once
    because the accounting never depends on ``x``.  Callers that charge
    replays stamp/price it once and append it per call.
    """

    run: Callable[[np.ndarray], np.ndarray]
    record: KernelRecord
    precision: Precision
    plan: SpMVPlan | None
    nrows: int
    ncols: int


def bind_spmv(
    mat: MBSRMatrix,
    precision: Precision = Precision.FP64,
    plan: SpMVPlan | None = None,
    *,
    allow_tensor_cores: bool = True,
    tc_threshold: float | None = None,
    storage_itemsize: int | None = None,
) -> SpMVBinding:
    """Resolve one operator's SpMV into a :class:`SpMVBinding`.

    This is the record-time half of the kernel tape: everything
    :func:`mbsr_spmv` re-derives or re-checks per call (argument
    validation, plan lookup, cache attribute walks, record construction,
    cost accounting, the segment-id range re-validation inside
    ``segment_sum``) happens here exactly once.  The float64 accumulator
    path reduces through ``np.bincount`` directly — the same call
    ``segment_sum`` bottoms out in, with the same input ordering, hence
    bit-identical — and other accumulators fall back to ``segment_sum``.
    """
    cache = mat.cache
    if plan is None:
        plan = cache.spmv_plan(allow_tensor_cores, tc_threshold=tc_threshold)
    record = KernelRecord(kernel="spmv", backend="amgt", precision=precision)
    _account_spmv(record, mat, plan, precision, storage_itemsize)

    in_dtype = np.dtype(precision.np_dtype)
    acc_dtype = np.dtype(precision.accum_dtype)
    nrows, ncols = mat.nrows, mat.ncols

    # The check gate is resolved once at bind time, exactly like the
    # TC/CUDA dispatch: under an active checked region (or REPRO_CHECK)
    # the binding's run verifies every call against the differential
    # oracle; otherwise the replay path carries zero check overhead.
    checked = check_runtime.is_active()

    if mat.blc_num == 0:
        empty_len = mat.mb * BLOCK_SIZE

        def run_empty(x: np.ndarray) -> np.ndarray:
            y = np.zeros(empty_len, dtype=acc_dtype)[:nrows]
            if checked:
                from repro.check import oracle

                oracle.verify_spmv(mat, x, y, precision, plan)
            return y if y.dtype == np.float64 else y.astype(np.float64)

        return SpMVBinding(run_empty, record, precision, plan, nrows, ncols)

    tiles = cache.tiles(in_dtype, acc_dtype)
    x_gather = cache.x_gather
    flat_ids = cache.y_scatter
    row_ids = cache.block_row_ids
    mb = mat.mb
    aligned = ncols == mat.nb * BLOCK_SIZE
    xp_buf = None if aligned else np.zeros(mat.nb * BLOCK_SIZE, dtype=in_dtype)
    # Reused work buffers: the gathered x tiles (input dtype), their
    # accumulator-dtype widening (aliased when no widening is needed) and
    # the per-tile contributions of the batched matvec.
    xblk_in = np.empty(x_gather.shape, dtype=in_dtype)
    widen = in_dtype != acc_dtype
    xblk_acc = np.empty(x_gather.shape, dtype=acc_dtype) if widen else xblk_in
    contrib = np.empty((tiles.shape[0], BLOCK_SIZE, 1), dtype=acc_dtype)
    contrib_flat = contrib.reshape(-1)
    bincount_path = acc_dtype == np.float64
    minlength = mb * BLOCK_SIZE

    def run_acc(x: np.ndarray) -> np.ndarray:
        """The replay core; returns y in the accumulator dtype."""
        xq = x if x.dtype == in_dtype else x.astype(in_dtype)
        if xp_buf is None:
            xp = xq
        else:
            xp_buf[:ncols] = xq
            xp = xp_buf
        xp.take(x_gather, out=xblk_in)
        if widen:
            xblk_acc[...] = xblk_in
        np.matmul(tiles, xblk_acc[:, :, None], out=contrib)
        if bincount_path:
            # The float64 fast path of segment_sum, minus its per-call
            # id-range validation: bincount accumulates sequentially in
            # input order, so this is bit-identical to np.add.at.
            return np.bincount(flat_ids, weights=contrib_flat,
                               minlength=minlength)[:nrows]
        return segment_sum(
            contrib[:, :, 0], row_ids, mb, sorted_ids=True
        ).reshape(-1)[:nrows]

    if checked:
        def run(x: np.ndarray) -> np.ndarray:
            from repro.check import oracle

            y = run_acc(x)
            oracle.verify_spmv(mat, x, y, precision, plan)
            return y if bincount_path else y.astype(np.float64)
    elif bincount_path:
        run = run_acc
    else:
        def run(x: np.ndarray) -> np.ndarray:
            return run_acc(x).astype(np.float64)

    return SpMVBinding(run, record, precision, plan, nrows, ncols)


# ----------------------------------------------------------------------
# Blocked SpMM: the multi-RHS panel twin of the SpMV above.
#
# The tensor-core economics of the paper hinge on arithmetic intensity:
# an mBSR tile loaded for one MMA is reused across every column of the
# RHS panel, so value/index traffic is charged once per tile while the
# MMA/flop count scales with the panel width.  The numeric contract is
# *per-column bit-identity* with the 1-RHS kernel: the contraction runs
# as a broadcast-stacked matmul ``(1, blc, 4, 4) @ (k, blc, 4, 1)``,
# whose gufunc core applies the identical ``(4, 4) @ (4, 1)`` product
# per column slice that the width-1 ``matmul(tiles, x[:, :, None])``
# applies (a flat ``(blc, 4, k)`` panel matmul does NOT round
# identically per column and is deliberately not used), and the
# segmented reduction runs one ``bincount`` per column with the same
# flat ids in the same input order as the width-1 epilogue.
# ----------------------------------------------------------------------

def _account_spmm(
    record: KernelRecord,
    mat: MBSRMatrix,
    plan: SpMVPlan,
    precision: Precision,
    width: int,
    storage_itemsize: int | None,
) -> None:
    """Fill *record* with the cost of one width-*width* SpMM on *mat*.

    Tile values, bitmaps and index structures are read once per panel
    (the amortisation the batched path exists for); MMA issues / scalar
    flops, the x-panel gather and the y-panel write scale with *width*.
    Like :func:`_account_spmv` the counters never depend on the operand,
    so tape bindings price the record once at bind time.
    """
    counters = record.counters
    acc_dtype = precision.accum_dtype
    nnz = mat.nnz
    itemsize = storage_itemsize or precision.itemsize
    if plan.use_tensor_cores:
        # Each loaded tile-pair issues one MMA per panel column: fragA is
        # loaded once, fragB cycles through the columns.
        counters.add_mma(precision, plan.mma_issues * width)
        counters.add_bytes(
            read=effective_value_bytes(mat.blc_num * TILE_SLOTS * itemsize, itemsize)
        )
    else:
        from repro.gpu.counters import (
            SCALAR_GATHER_OVERHEAD,
            SCALAR_PIPELINE_OVERHEAD,
        )

        counters.add_flops(precision, 2.0 * nnz * SCALAR_PIPELINE_OVERHEAD * width)
        value_bytes = min(
            float(nnz) * itemsize * SCALAR_GATHER_OVERHEAD,
            float(mat.blc_num) * TILE_SLOTS * itemsize,
        )
        counters.add_bytes(read=effective_value_bytes(value_bytes, itemsize))
    # Index structures + bitmaps once; x gather and y write per column.
    counters.add_bytes(
        read=mat.blc_num * (8 + 2) + (mat.mb + 1) * 8
        + effective_value_bytes(mat.blc_num * BLOCK_SIZE * itemsize, itemsize) * width,
        written=mat.nrows * max(acc_dtype().itemsize, itemsize) * width,
    )
    counters.imbalance = plan.imbalance
    counters.launches = 1
    record.detail = {
        "path": plan.kernel_path,
        "variation": plan.variation,
        "width": width,
    }


@dataclass
class SpMMBinding:
    """A fully-resolved, replayable blocked SpMM — the batched tape's
    plan handle.

    Layout: ``run(X)`` takes a **row panel** ``(width, ncols)`` — row j
    is right-hand side j, contiguous — and returns a fresh float64
    ``(width, nrows)`` panel whose row j is bit-identical to the width-1
    :class:`SpMVBinding` ``run`` applied to ``X[j]``.  The row-panel
    layout is the widened workspace's slot layout (each RHS stays
    contiguous for the per-column norms and reductions); the public
    ``(n, k)`` column-panel convention of :func:`mbsr_spmm` transposes
    at the boundary.

    ``run_acc`` is the accumulator-dtype inner core (what
    :func:`mbsr_spmm` calls); ``record`` is the priced one-panel-call
    cost template (bytes once per tile, flops per column).  Work buffers
    are reused across calls — single-threaded by contract, like
    :class:`SpMVBinding`.
    """

    run: Callable[[np.ndarray], np.ndarray]
    run_acc: Callable[[np.ndarray], np.ndarray]
    record: KernelRecord
    precision: Precision
    plan: SpMVPlan | None
    nrows: int
    ncols: int
    width: int


def bind_spmm(
    mat: MBSRMatrix,
    width: int,
    precision: Precision = Precision.FP64,
    plan: SpMVPlan | None = None,
    *,
    allow_tensor_cores: bool = True,
    tc_threshold: float | None = None,
    storage_itemsize: int | None = None,
) -> SpMMBinding:
    """Resolve one operator's blocked SpMM into a :class:`SpMMBinding`.

    Same plan/cast/dispatch machinery as :func:`bind_spmv` — the memoised
    TC/CUDA plan, the quantised-and-widened tile array and the cached
    gather/scatter indices — with the contraction widened to the panel:

    * gather: one ``take`` of the padded x panel along the column axis
      (same flat indices as the width-1 gather, per-row exact);
    * contract: ``np.matmul(tiles[None], X4)`` with ``X4`` of shape
      ``(width, blc, 4, 1)`` — the broadcast applies the width-1
      ``(4, 4) @ (4, 1)`` gufunc core per column, so each column rounds
      exactly as its 1-RHS call would;
    * reduce: one float64 ``bincount`` per column over the same flat ids
      in the same input order as the width-1 epilogue (other accumulator
      dtypes fall back to the per-column ``segment_sum``).
    """
    if width < 1:
        raise ValueError(f"panel width must be >= 1, got {width}")
    cache = mat.cache
    if plan is None:
        plan = cache.spmv_plan(allow_tensor_cores, tc_threshold=tc_threshold)
    record = KernelRecord(kernel="spmm", backend="amgt", precision=precision)
    _account_spmm(record, mat, plan, precision, width, storage_itemsize)

    in_dtype = np.dtype(precision.np_dtype)
    acc_dtype = np.dtype(precision.accum_dtype)
    nrows, ncols = mat.nrows, mat.ncols
    checked = check_runtime.is_active()

    if mat.blc_num == 0:
        def run_empty_acc(x: np.ndarray) -> np.ndarray:
            return np.zeros((width, nrows), dtype=acc_dtype)

        def run_empty(x: np.ndarray) -> np.ndarray:
            y = run_empty_acc(x)
            if checked:
                from repro.check import oracle

                for j in range(width):
                    oracle.verify_spmv(mat, x[j], y[j], precision, plan)
            return y if y.dtype == np.float64 else y.astype(np.float64)

        return SpMMBinding(run_empty, run_empty_acc, record, precision, plan,
                           nrows, ncols, width)

    tiles = cache.tiles(in_dtype, acc_dtype)
    tiles_b = tiles[None]  # broadcast leading panel axis
    flat_gather = cache.x_gather.reshape(-1)
    flat_ids = cache.y_scatter
    row_ids = cache.block_row_ids
    mb = mat.mb
    blc = tiles.shape[0]
    aligned = ncols == mat.nb * BLOCK_SIZE
    xp_buf = (
        None if aligned
        else np.zeros((width, mat.nb * BLOCK_SIZE), dtype=in_dtype)
    )
    # Reused work buffers, the panel twins of bind_spmv's: the gathered
    # x tiles as a (width, blc, 4, 1) view, their accumulator-dtype
    # widening, and the per-tile per-column contributions.
    xg_buf = np.empty((width, blc * BLOCK_SIZE), dtype=in_dtype)
    x4 = xg_buf.reshape(width, blc, BLOCK_SIZE, 1)
    widen = in_dtype != acc_dtype
    xacc_buf = np.empty(x4.shape, dtype=acc_dtype) if widen else x4
    contrib = np.empty((width, blc, BLOCK_SIZE, 1), dtype=acc_dtype)
    contrib_flat = contrib.reshape(width, -1)
    bincount_path = acc_dtype == np.float64
    minlength = mb * BLOCK_SIZE

    def run_acc(x: np.ndarray) -> np.ndarray:
        """The panel replay core; returns (width, nrows) in the
        accumulator dtype, row j bit-identical to the width-1 core."""
        xq = x if x.dtype == in_dtype else x.astype(in_dtype)
        if xp_buf is None:
            xp = xq
        else:
            xp_buf[:, :ncols] = xq
            xp = xp_buf
        np.take(xp, flat_gather, axis=1, out=xg_buf)
        if widen:
            xacc_buf[...] = x4
        np.matmul(tiles_b, xacc_buf, out=contrib)
        if bincount_path:
            y = np.empty((width, nrows), dtype=np.float64)
            for j in range(width):
                y[j] = np.bincount(flat_ids, weights=contrib_flat[j],
                                   minlength=minlength)[:nrows]
            return y
        y = np.empty((width, nrows), dtype=acc_dtype)
        for j in range(width):
            y[j] = segment_sum(
                contrib[j, :, :, 0], row_ids, mb, sorted_ids=True
            ).reshape(-1)[:nrows]
        return y

    if checked:
        def run(x: np.ndarray) -> np.ndarray:
            from repro.check import oracle

            y = run_acc(x)
            for j in range(width):
                oracle.verify_spmv(mat, x[j], y[j], precision, plan)
            return y if bincount_path else y.astype(np.float64)
    elif bincount_path:
        run = run_acc
    else:
        def run(x: np.ndarray) -> np.ndarray:
            return run_acc(x).astype(np.float64)

    return SpMMBinding(run, run_acc, record, precision, plan,
                       nrows, ncols, width)


def mbsr_spmm(
    mat: MBSRMatrix,
    x: np.ndarray,
    precision: Precision = Precision.FP64,
    plan: SpMVPlan | None = None,
    *,
    allow_tensor_cores: bool = True,
    tc_threshold: float | None = None,
    storage_itemsize: int | None = None,
) -> tuple[np.ndarray, KernelRecord]:
    """Compute ``Y = A @ X`` for an ``(ncols, k)`` RHS panel.

    The public column-panel convention: *x* has one right-hand side per
    column, and the returned ``Y`` is ``(nrows, k)`` in the accumulator
    dtype of *precision* — column j bit-identical to
    ``mbsr_spmv(mat, x[:, j], ...)``.  Internally the panel transposes
    to the contiguous row-panel layout of :class:`SpMMBinding` (memoised
    per (precision, width, dispatch knobs) in the operator cache, so
    repeated same-width calls replay resolved state).  Under an active
    check region every column is differentially verified against the
    width-1 kernel.
    """
    x = np.asarray(x)
    if x.ndim != 2 or x.shape[0] != mat.ncols:
        raise ValueError(
            f"x has shape {x.shape}, expected ({mat.ncols}, k) — one "
            f"right-hand side per column"
        )
    width = x.shape[1]
    cache = mat.cache
    if plan is None:
        plan = cache.spmv_plan(allow_tensor_cores, tc_threshold=tc_threshold)
    binding = cache.spmm_binding(
        precision, width,
        allow_tensor_cores=allow_tensor_cores,
        tc_threshold=tc_threshold,
        storage_itemsize=storage_itemsize,
    )
    record = KernelRecord(kernel="spmm", backend="amgt", precision=precision)
    _account_spmm(record, mat, plan, precision, width, storage_itemsize)

    y_rows = binding.run_acc(np.ascontiguousarray(x.T))
    y = np.ascontiguousarray(y_rows.T)
    assert y.dtype == np.dtype(precision.accum_dtype), (
        f"mbsr_spmm produced {y.dtype}, expected accumulator "
        f"{precision.accum_dtype}"
    )
    if check_runtime.is_active():
        # The batch path's differential oracle is the column loop itself:
        # each column must reproduce the 1-RHS kernel bit for bit (which
        # in turn verifies against the quantisation-exact reference).
        for j in range(width):
            y1, _ = mbsr_spmv(
                mat, x[:, j], precision, plan,
                allow_tensor_cores=allow_tensor_cores,
                tc_threshold=tc_threshold,
                storage_itemsize=storage_itemsize,
            )
            if not np.array_equal(y[:, j], y1, equal_nan=True):
                from repro.check import ContractViolation

                bad = int(np.flatnonzero(y[:, j] != y1)[0])
                raise ContractViolation(
                    "mbsr_spmm",
                    "spmm/column-differential",
                    f"panel column {j} diverges from the 1-RHS kernel "
                    f"(first mismatch at row {bad}: panel={y[bad, j]!r}, "
                    f"spmv={y1[bad]!r})",
                )
    if obs_trace.is_active():
        from repro.obs import metrics as obs_metrics

        obs_metrics.REGISTRY.counter(
            obs_names.SPMM_DISPATCH,
            core="tc" if plan.use_tensor_cores else "cuda",
            schedule="balanced" if plan.load_balanced else "row-warp",
            width=width,
        ).inc()
        obs_metrics.REGISTRY.histogram(
            obs_names.SPMV_TILE_POPCOUNT,
            buckets=obs_metrics.POP_BUCKETS,
            kernel="spmm",
        ).observe_counts(cache.pop_hist)
    return y, record
