"""Driver for the mBSR SpGEMM: analysis -> symbolic -> numeric.

Produces C = A @ B in mBSR together with a :class:`KernelRecord` whose
counters merge the three phases.  Tiles whose numeric values cancel to zero
keep their bitmap bits (the bitmap tracks *structural* nonzeros, exactly as
the OR-accumulation of Alg. 4 does on the GPU); callers that need a
numerically pruned matrix convert through CSR with ``eliminate_zeros``.

When the same sparsity pattern is multiplied repeatedly (re-running the
AMG setup after coefficient updates — the alpha-Setup scenario the paper
cites, or cuSPARSE's ``SPGEMM_REUSE`` API), the analysis + symbolic phases
can be amortised: capture them once with :func:`mbsr_spgemm_symbolic_plan`
and pass the plan back via ``reuse_plan`` to run only the numeric phase.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.check import runtime as check_runtime
from repro.formats.mbsr import MBSRMatrix
from repro.obs import trace as obs_trace
from repro.obs import names as obs_names
from repro.gpu.counters import Precision
from repro.kernels.record import KernelRecord
from repro.kernels.spgemm_analysis import AnalysisResult, analyse_and_bin
from repro.kernels.spgemm_numeric import numeric_spgemm
from repro.kernels.spgemm_symbolic import SymbolicResult, symbolic_spgemm

__all__ = [
    "mbsr_spgemm",
    "mbsr_spgemm_rows",
    "mbsr_spgemm_symbolic_plan",
    "SpGEMMPlan",
]


@dataclass
class SpGEMMPlan:
    """Captured analysis + symbolic phases for pattern-reuse products."""

    analysis: "AnalysisResult"
    symbolic: "SymbolicResult"
    #: Shapes of the operands the plan was built for (validated on reuse).
    shape_a: tuple[int, int]
    shape_b: tuple[int, int]
    #: Tile counts the plan assumes (a cheap pattern-identity proxy).
    blc_num_a: int
    blc_num_b: int
    #: Pattern fingerprints of the operands (exact identity; ``None`` on
    #: plans built before the setup engine, validated only when present).
    pattern_key_a: str | None = None
    pattern_key_b: str | None = None


def mbsr_spgemm_symbolic_plan(
    mat_a: MBSRMatrix, mat_b: MBSRMatrix
) -> SpGEMMPlan:
    """Run analysis + symbolic once and capture them for reuse.

    The returned plan is valid for any later product whose operands have
    the *same sparsity pattern* (tile positions and bitmaps) as
    ``mat_a`` / ``mat_b`` — the coefficient-update scenario.
    """
    if mat_a.ncols != mat_b.nrows:
        raise ValueError(
            f"inner dimensions differ: A is {mat_a.shape}, B is {mat_b.shape}"
        )
    analysis = analyse_and_bin(mat_a, mat_b)
    symbolic = symbolic_spgemm(mat_a, mat_b, analysis)
    # Precompute the numeric-phase geometry so every replay of this plan
    # (explicit or via SetupPlanCache) starts straight at the value math.
    symbolic.locate_pairs(mat_b)
    return SpGEMMPlan(
        analysis=analysis,
        symbolic=symbolic,
        shape_a=mat_a.shape,
        shape_b=mat_b.shape,
        blc_num_a=mat_a.blc_num,
        blc_num_b=mat_b.blc_num,
        pattern_key_a=mat_a.cache.pattern_key,
        pattern_key_b=mat_b.cache.pattern_key,
    )


def mbsr_spgemm_rows(
    mat_a: MBSRMatrix,
    mat_b: MBSRMatrix,
    rows: np.ndarray,
    precision: Precision = Precision.FP64,
    out_dtype=None,
    *,
    tc_threshold: int | None = None,
    storage_itemsize: int | None = None,
) -> tuple[MBSRMatrix, "SymbolicResult", KernelRecord]:
    """Dirty-row replay: C[rows, :] = A[rows, :] @ B for sorted block-rows.

    Runs the symbolic + numeric phases restricted to the given block-rows
    of A and returns the compacted sub-product (block-row ``i`` of the
    result is block-row ``rows[i]`` of the full product) together with the
    restricted :class:`SymbolicResult` (pair lists indexing the *full*
    operand tile arrays — the splice machinery of
    :mod:`repro.kernels.setup_cache` grafts them into cached plans) and a
    merged :class:`KernelRecord`.

    Bit-identity: within every selected block-row the candidate-pair order
    equals the full traversal's, and the segmented accumulation follows
    pair order, so each returned tile is bytewise equal to the same tile
    of ``mbsr_spgemm(mat_a, mat_b)`` — the property the incremental setup
    patcher's contract gate relies on.
    """
    if mat_a.ncols != mat_b.nrows:
        raise ValueError(
            f"inner dimensions differ: A is {mat_a.shape}, B is {mat_b.shape}"
        )
    rows = np.asarray(rows, dtype=np.int64)
    if rows.size and (np.any(np.diff(rows) <= 0) or rows[0] < 0
                      or rows[-1] >= mat_a.mb):
        raise ValueError("rows must be sorted, unique block-row ids of A")
    record = KernelRecord(kernel="spgemm", backend="amgt", precision=precision)
    symbolic = symbolic_spgemm(mat_a, mat_b, None, rows)
    from repro.formats.bitmap import TC_NNZ_THRESHOLD, bitmap_to_mask

    threshold = TC_NNZ_THRESHOLD if tc_threshold is None else tc_threshold
    numeric = numeric_spgemm(mat_a, mat_b, symbolic, precision,
                             tc_threshold=threshold,
                             storage_itemsize=storage_itemsize)
    record.counters.merge(symbolic.counters)
    record.counters.merge(numeric.counters)
    record.detail = {
        "rows": int(rows.shape[0]),
        "tc_pairs": numeric.tc_pairs,
        "cuda_pairs": numeric.cuda_pairs,
        "blc_num_c": symbolic.blc_num_c,
    }
    val = numeric.blc_val_c
    if out_dtype is not None:
        val = val.astype(out_dtype)
    mask = bitmap_to_mask(numeric.blc_map_c)
    val = np.where(mask, val, val.dtype.type(0))
    out = MBSRMatrix(
        (4 * rows.shape[0], mat_b.ncols),
        symbolic.blc_ptr_c,
        symbolic.blc_idx_c,
        val,
        numeric.blc_map_c,
        _trusted=True,
    )
    if check_runtime.is_active():
        _verify_rows_slice(mat_a, mat_b, out, rows, precision, out_dtype,
                           tc_threshold=threshold,
                           storage_itemsize=storage_itemsize)
    return out, symbolic, record


def _verify_rows_slice(mat_a, mat_b, out, rows, precision, out_dtype, *,
                       tc_threshold, storage_itemsize) -> None:
    """Checked-mode oracle: the restricted product must be a bytewise
    slice of the full product on the selected block-rows."""
    from repro.check.violation import ContractViolation

    full, _ = mbsr_spgemm(mat_a, mat_b, precision, out_dtype,
                          tc_threshold=tc_threshold,
                          storage_itemsize=storage_itemsize)
    s0, s1 = full.blc_ptr[rows], full.blc_ptr[rows + 1]
    counts = (s1 - s0).astype(np.int64)
    total = int(counts.sum())
    offs = np.repeat(s0, counts) + (
        np.arange(total, dtype=np.int64)
        - np.repeat(np.cumsum(counts) - counts, counts)
    )
    if not (np.array_equal(np.diff(out.blc_ptr), counts)
            and np.array_equal(out.blc_idx, full.blc_idx[offs])
            and np.array_equal(out.blc_map, full.blc_map[offs])
            and np.array_equal(out.blc_val, full.blc_val[offs])):
        raise ContractViolation(
            "mbsr_spgemm_rows", "spgemm/rows-slice",
            f"restricted product diverges from the full product on "
            f"{rows.shape[0]} block-rows",
            operands=(mat_a, mat_b),
        )


def mbsr_spgemm(
    mat_a: MBSRMatrix,
    mat_b: MBSRMatrix,
    precision: Precision = Precision.FP64,
    out_dtype=None,
    *,
    tc_threshold: int | None = None,
    storage_itemsize: int | None = None,
    reuse_plan: SpGEMMPlan | None = None,
    plan_cache=None,
) -> tuple[MBSRMatrix, KernelRecord]:
    """Multiply two mBSR matrices with the AmgT hybrid kernel.

    Parameters
    ----------
    mat_a, mat_b:
        Operands; ``mat_a.ncols`` must equal ``mat_b.nrows``.
    precision:
        Compute precision of the numeric phase.  FP16 multiplies accumulate
        in FP32 (tensor-core semantics).
    out_dtype:
        Value dtype of the result (default: the accumulator dtype).
    reuse_plan:
        A plan from :func:`mbsr_spgemm_symbolic_plan` built on operands
        with the same sparsity pattern; skips the analysis + symbolic
        phases (only the numeric phase runs and is charged).
    plan_cache:
        A :class:`repro.kernels.setup_cache.SetupPlanCache`.  When given
        (and ``reuse_plan`` is not), the plan is looked up by the operands'
        pattern fingerprints: a hit skips the analysis + symbolic phases
        exactly like ``reuse_plan``; a miss builds the plan, charges the
        full cost, and stores it for the next same-pattern product.

    Returns
    -------
    (MBSRMatrix, KernelRecord)
    """
    if mat_a.ncols != mat_b.nrows:
        raise ValueError(
            f"inner dimensions differ: A is {mat_a.shape}, B is {mat_b.shape}"
        )
    record = KernelRecord(kernel="spgemm", backend="amgt", precision=precision)

    if reuse_plan is None and plan_cache is not None:
        reuse_plan, fresh = plan_cache.spgemm_plan(mat_a, mat_b)
        if fresh:
            # Freshly built for these operands: run it as the cold path so
            # the analysis + symbolic phases are charged exactly once.
            analysis = reuse_plan.analysis
            symbolic = reuse_plan.symbolic
            fresh_symbolic = True
            reuse_plan = None
    if reuse_plan is not None:
        if (reuse_plan.shape_a != mat_a.shape or reuse_plan.shape_b != mat_b.shape
                or reuse_plan.blc_num_a != mat_a.blc_num
                or reuse_plan.blc_num_b != mat_b.blc_num):
            raise ValueError(
                "reuse_plan was built for operands with a different pattern"
            )
        if (reuse_plan.pattern_key_a is not None
                and (reuse_plan.pattern_key_a != mat_a.cache.pattern_key
                     or reuse_plan.pattern_key_b != mat_b.cache.pattern_key)):
            raise ValueError(
                "reuse_plan was built for operands with a different pattern"
            )
        analysis = reuse_plan.analysis
        symbolic = reuse_plan.symbolic
        fresh_symbolic = False
    elif plan_cache is None:
        analysis = analyse_and_bin(mat_a, mat_b)
        symbolic = symbolic_spgemm(mat_a, mat_b, analysis)
        fresh_symbolic = True
    from repro.formats.bitmap import TC_NNZ_THRESHOLD

    threshold = TC_NNZ_THRESHOLD if tc_threshold is None else tc_threshold
    numeric = numeric_spgemm(mat_a, mat_b, symbolic, precision,
                             tc_threshold=threshold,
                             storage_itemsize=storage_itemsize)

    if fresh_symbolic:
        record.counters.merge(symbolic.counters)
        # Analysis pass: one launch over A's index arrays + B's row counts.
        record.counters.launches += 1
        record.counters.add_bytes(
            # lint: disable=R3 -- 16 B/tile of index traffic (blc_idx +
            # per-tile popcount, both int64), not the 16-slot tile: the
            # analysis pass never touches values
            read=mat_a.blc_num * 16 + mat_a.mb * 8 + mat_b.mb * 8
        )
    record.counters.merge(numeric.counters)
    record.detail = {
        "bins": {b: int(rows.shape[0]) for b, rows in enumerate(analysis.rows_by_bin)},
        "intermediate_tiles": analysis.total_intermediate,
        "tc_pairs": numeric.tc_pairs,
        "cuda_pairs": numeric.cuda_pairs,
        "blc_num_c": symbolic.blc_num_c,
        "symbolic_reused": not fresh_symbolic,
    }

    val = numeric.blc_val_c
    if out_dtype is not None:
        val = val.astype(out_dtype)
    # Zero out accumulator slots outside the bitmap so the mBSR invariant
    # (values only under set bits) holds for downstream kernels.
    from repro.formats.bitmap import bitmap_to_mask

    mask = bitmap_to_mask(numeric.blc_map_c)
    val = np.where(mask, val, val.dtype.type(0))

    out = MBSRMatrix(
        (mat_a.nrows, mat_b.ncols),
        symbolic.blc_ptr_c,
        symbolic.blc_idx_c,
        val,
        numeric.blc_map_c,
        _trusted=True,
    )
    if check_runtime.is_active():
        from repro.check import oracle

        oracle.verify_spgemm(mat_a, mat_b, out, precision, out_dtype)
    if obs_trace.is_active():
        from repro.obs import metrics as obs_metrics

        # The numeric phase dispatches per intermediate pair: tensor cores
        # for dense-enough tiles, CUDA cores otherwise (Sec. IV.C).
        if numeric.tc_pairs:
            obs_metrics.REGISTRY.counter(
                obs_names.SPGEMM_PAIR_DISPATCH, core="tc"
            ).inc(numeric.tc_pairs)
        if numeric.cuda_pairs:
            obs_metrics.REGISTRY.counter(
                obs_names.SPGEMM_PAIR_DISPATCH, core="cuda"
            ).inc(numeric.cuda_pairs)
        obs_metrics.inc(
            obs_names.SPGEMM_SYMBOLIC,
            result="reused" if not fresh_symbolic else "built",
        )
        obs_metrics.REGISTRY.histogram(
            obs_names.SPGEMM_TILE_POPCOUNT,
            buckets=obs_metrics.POP_BUCKETS,
            kernel="spgemm",
        ).observe_counts(out.cache.pop_hist)
    return out, record
