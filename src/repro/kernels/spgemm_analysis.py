"""SpGEMM step 1: data analysis and binning (Sec. IV.C.1).

For every block-row of C, the number of *intermediate product tiles*
(``Cub_per_row``) is the sum, over the tiles of that block-row of A, of the
tile counts of the corresponding block-rows of B.  Block-rows are then
grouped into eight bins whose bounds start at 128 and double up to 8192;
the bin determines the shared-memory hash-table size used by the symbolic phase
(and, on the GPU, which kernel variant handles the row).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.formats.mbsr import MBSRMatrix
from repro.util.segops import segment_sum

__all__ = ["BIN_BOUNDS", "NUM_BINS", "AnalysisResult", "analyse_and_bin"]

#: Bin upper bounds: rows with Cub_per_row < 128 land in bin 0, then each
#: bound doubles; rows with >= 8192 land in the last bin (Sec. IV.C.1).
BIN_BOUNDS = np.array([128, 256, 512, 1024, 2048, 4096, 8192], dtype=np.int64)
NUM_BINS = BIN_BOUNDS.shape[0] + 1


@dataclass
class AnalysisResult:
    """Output of the analysis/binning pass."""

    #: Upper bound of intermediate product tiles per block-row of C.
    cub_per_row: np.ndarray
    #: Bin index (0..7) per block-row.
    bin_of_row: np.ndarray
    #: Block-row ids grouped by bin: ``rows_by_bin[b]`` lists the rows of bin b.
    rows_by_bin: list[np.ndarray]
    #: Hash-table capacity per block-row (next power of two >= bin bound).
    table_size: np.ndarray

    @property
    def total_intermediate(self) -> int:
        return int(self.cub_per_row.sum())


def analyse_and_bin(mat_a: MBSRMatrix, mat_b: MBSRMatrix) -> AnalysisResult:
    """Compute ``Cub_per_row`` and the 8-way binning of C's block-rows."""
    if mat_a.ncols != mat_b.nrows:
        raise ValueError(
            f"inner dimensions differ: A is {mat_a.shape}, B is {mat_b.shape}"
        )
    # Tiles of B per block-row of B.
    b_row_counts = np.diff(mat_b.blc_ptr)
    # For each tile of A, the contribution is the tile count of B's
    # block-row indexed by that tile's column.
    contrib = b_row_counts[mat_a.blc_idx]
    cub = segment_sum(contrib, mat_a.block_row_ids(), mat_a.mb, sorted_ids=True)

    bin_of_row = np.digitize(cub, BIN_BOUNDS).astype(np.int64)
    rows_by_bin = [
        np.flatnonzero(bin_of_row == b).astype(np.int64) for b in range(NUM_BINS)
    ]
    # Table capacity: smallest bound covering the bin, doubled for load
    # factor headroom, like the shared-memory tables sized per bin.
    bounds = np.concatenate([BIN_BOUNDS, BIN_BOUNDS[-1:] * 2])
    table_size = bounds[bin_of_row] * 2
    return AnalysisResult(cub, bin_of_row, rows_by_bin, table_size)
