"""Per-operator solve-phase cache (the host analogue of Sec. IV.D's
"preprocessing once per matrix, reused for every SpMV").

AmgT amortises everything that depends only on the *operator* — the SpMV
schedule, the per-tile popcounts, the precision casts of the tile values —
across the hundreds of kernel calls the solve phase issues against each
level matrix.  The numpy reproduction used to redo most of that work per
call: every ``mbsr_spmv`` re-derived the block-row ids and re-cast the full
tile array twice (``.astype(in_dtype).astype(acc_dtype)``), and every
``numeric_spgemm`` re-popcounted the operand bitmaps.

:class:`OperatorCache` holds all of it, keyed per matrix.  It is created
lazily by :attr:`repro.formats.mbsr.MBSRMatrix.cache` and is reachable from
:class:`repro.hypre.csr_matrix.HypreCSRMatrix` via ``operator_cache``; the
kernels consult it transparently, so callers that never reuse a matrix pay
one extra attribute lookup and nothing else.

The cache assumes the owning matrix's arrays are immutable after
construction — the invariant every ``MBSRMatrix`` operation already
follows (``astype``/``transpose``/``copy`` build new objects, each with a
fresh cache).
"""

from __future__ import annotations

import numpy as np

from repro.obs import blackbox as obs_blackbox
from repro.obs import metrics as obs_metrics
from repro.obs import names as obs_names

__all__ = ["OperatorCache"]


class OperatorCache:
    """Memoised per-matrix state reused across kernel calls."""

    def __init__(self, mat) -> None:
        self._mat = mat
        self._pattern_key: str | None = None
        self._pop_per_tile: np.ndarray | None = None
        self._pop_hist: np.ndarray | None = None
        self._nnz: int | None = None
        self._block_row_ids: np.ndarray | None = None
        self._blocks_per_row: np.ndarray | None = None
        self._x_gather: np.ndarray | None = None
        self._y_scatter: np.ndarray | None = None
        #: Quantised-then-widened tile arrays, keyed by (in, acc) dtypes.
        self._tiles: dict[tuple[np.dtype, np.dtype], np.ndarray] = {}
        #: SpMV plans keyed by (allow_tensor_cores, tc_threshold).
        self._spmv_plans: dict[tuple[bool, float], object] = {}
        #: Replayable SpMV bindings keyed by (precision, allow_tc,
        #: tc_threshold, storage_itemsize) — the tape's plan handles.
        self._spmv_bindings: dict[tuple, object] = {}
        #: Replayable blocked-SpMM bindings; the SpMV key plus the panel
        #: width (work-buffer shapes are width-specific).
        self._spmm_bindings: dict[tuple, object] = {}
        #: Reuse telemetry over the per-call entries (:meth:`tiles` and
        #: :meth:`spmv_plan` — the lookups every kernel call makes).
        #: Plain ints so tests and the obs registry can read them with no
        #: tracing gate; ``evictions`` stays 0 — the cache lives and dies
        #: with its matrix and never drops entries.
        self.hits: int = 0
        self.misses: int = 0
        self.evictions: int = 0

    # -- structural invariants -----------------------------------------
    @property
    def pattern_key(self) -> str:
        """Sparsity-structure digest, the key of the setup-phase plan cache.

        Hashes shape + ``blc_ptr``/``blc_idx``/``blc_map`` (never values),
        so every precision cast of an operator shares the key.  Computed
        once per matrix; casts seed it from the canonical form via
        :meth:`seed_pattern_key`.
        """
        if self._pattern_key is None:
            from repro.check.fingerprint import pattern_fingerprint

            self._pattern_key = pattern_fingerprint(self._mat)
        return self._pattern_key

    def seed_pattern_key(self, key: str) -> None:
        """Adopt a pattern key computed on a structurally identical matrix
        (e.g. the canonical-precision form a cast was derived from)."""
        if self._pattern_key is None:
            self._pattern_key = key

    @property
    def pop_per_tile(self) -> np.ndarray:
        """``bitmap_popcount(blc_map)``, computed once per matrix."""
        if self._pop_per_tile is None:
            from repro.formats.bitmap import bitmap_popcount

            self._pop_per_tile = bitmap_popcount(self._mat.blc_map)
            self._pop_per_tile.setflags(write=False)
        return self._pop_per_tile

    def seed_pop_per_tile(self, pop: np.ndarray) -> None:
        """Adopt precomputed tile popcounts (e.g. from a replayed RAP plan
        whose intermediate structure carries them)."""
        if self._pop_per_tile is None:
            pop = np.ascontiguousarray(pop)
            pop.setflags(write=False)
            self._pop_per_tile = pop

    @property
    def pop_hist(self) -> np.ndarray:
        """Histogram of nonzeros per tile, bins 0..16 — the distribution
        the TC-vs-CUDA dispatch threshold (Sec. IV.D) cuts through.
        Computed once; the obs layer folds it into its popcount
        histogram on every traced kernel call."""
        if self._pop_hist is None:
            self._pop_hist = np.bincount(self.pop_per_tile, minlength=17)
            self._pop_hist.setflags(write=False)
        return self._pop_hist

    @property
    def nnz(self) -> int:
        if self._nnz is None:
            self._nnz = int(self.pop_per_tile.sum())
        return self._nnz

    @property
    def block_row_ids(self) -> np.ndarray:
        """Block-row id per stored tile (COO expansion of ``blc_ptr``)."""
        if self._block_row_ids is None:
            mat = self._mat
            self._block_row_ids = np.repeat(
                np.arange(mat.mb, dtype=np.int64), self.blocks_per_row
            )
            self._block_row_ids.setflags(write=False)
        return self._block_row_ids

    @property
    def blocks_per_row(self) -> np.ndarray:
        if self._blocks_per_row is None:
            self._blocks_per_row = np.diff(self._mat.blc_ptr)
            self._blocks_per_row.setflags(write=False)
        return self._blocks_per_row

    @property
    def x_gather(self) -> np.ndarray:
        """Flat per-tile x-slice indices: ``xp[x_gather]`` is (blc_num, 4)."""
        if self._x_gather is None:
            from repro.formats.bitmap import BLOCK_SIZE

            idx = self._mat.blc_idx * BLOCK_SIZE
            self._x_gather = idx[:, None] + np.arange(BLOCK_SIZE, dtype=np.int64)
            self._x_gather.setflags(write=False)
        return self._x_gather

    @property
    def y_scatter(self) -> np.ndarray:
        """Precomputed ``segment_sum`` bin ids for the SpMV epilogue.

        The (blc_num, 4) per-tile contributions reduce into block rows via
        the float64 bincount path; this is its flattened
        (segment, component) id array, built once per matrix.
        """
        if self._y_scatter is None:
            from repro.formats.bitmap import BLOCK_SIZE
            from repro.util.segops import flat_segment_ids

            self._y_scatter = flat_segment_ids(self.block_row_ids, BLOCK_SIZE)
            self._y_scatter.setflags(write=False)
        return self._y_scatter

    # -- precision casts -----------------------------------------------
    def tiles(self, in_dtype, acc_dtype) -> np.ndarray:
        """Tile values quantised to *in_dtype* then widened to *acc_dtype*.

        This is the per-call ``.astype(in_dtype).astype(acc_dtype)`` the
        kernels used to run on every SpMV/SpGEMM, done once and kept.  The
        quantise step is skipped (not re-rounded) when the stored values
        already hold *in_dtype* — numerically identical either way.
        """
        key = (np.dtype(in_dtype), np.dtype(acc_dtype))
        cached = self._tiles.get(key)
        if cached is None:
            self.misses += 1
            obs_metrics.inc(
                obs_names.OPERATOR_CACHE_REQUESTS, entry="tiles", result="miss"
            )
            obs_blackbox.record("operator_cache_miss", entry="tiles")
            vals = self._mat.blc_val
            quant = vals if vals.dtype == key[0] else vals.astype(key[0])
            cached = quant if quant.dtype == key[1] else quant.astype(key[1])
            cached.setflags(write=False)
            self._tiles[key] = cached
        else:
            self.hits += 1
            obs_metrics.inc(
                obs_names.OPERATOR_CACHE_REQUESTS, entry="tiles", result="hit"
            )
        return cached

    # -- SpMV preprocessing ----------------------------------------------
    def spmv_plan(self, allow_tensor_cores: bool = True, tc_threshold=None):
        """Memoised :func:`repro.kernels.spmv.build_spmv_plan`."""
        from repro.formats.bitmap import TC_NNZ_THRESHOLD
        from repro.kernels.spmv import build_spmv_plan

        threshold = TC_NNZ_THRESHOLD if tc_threshold is None else tc_threshold
        key = (bool(allow_tensor_cores), float(threshold))
        plan = self._spmv_plans.get(key)
        if plan is None:
            self.misses += 1
            obs_metrics.inc(
                obs_names.OPERATOR_CACHE_REQUESTS, entry="spmv_plan",
                result="miss",
            )
            plan = build_spmv_plan(
                self._mat,
                allow_tensor_cores=allow_tensor_cores,
                tc_threshold=threshold,
            )
            self._spmv_plans[key] = plan
            obs_blackbox.record(
                "dispatch_decision",
                kernel="spmv",
                core="tc" if plan.use_tensor_cores else "cuda",
                schedule="balanced" if plan.load_balanced else "row-warp",
            )
        else:
            self.hits += 1
            obs_metrics.inc(
                obs_names.OPERATOR_CACHE_REQUESTS, entry="spmv_plan",
                result="hit",
            )
        return plan

    def spmv_binding(
        self,
        precision,
        *,
        allow_tensor_cores: bool = True,
        tc_threshold=None,
        storage_itemsize: int | None = None,
    ):
        """Memoised :func:`repro.kernels.spmv.bind_spmv`.

        One binding per (precision, dispatch knobs) per operator: tapes
        recorded against the same hierarchy share the resolved kernels
        (and their work buffers — single-threaded replay is the contract).
        """
        from repro.formats.bitmap import TC_NNZ_THRESHOLD
        from repro.kernels.spmv import bind_spmv

        threshold = TC_NNZ_THRESHOLD if tc_threshold is None else tc_threshold
        key = (precision, bool(allow_tensor_cores), float(threshold),
               storage_itemsize)
        binding = self._spmv_bindings.get(key)
        if binding is None:
            self.misses += 1
            obs_metrics.inc(
                obs_names.OPERATOR_CACHE_REQUESTS, entry="spmv_binding",
                result="miss",
            )
            obs_blackbox.record(
                "operator_cache_miss", entry="spmv_binding",
                precision=precision.name.lower(),
            )
            binding = bind_spmv(
                self._mat,
                precision,
                self.spmv_plan(allow_tensor_cores, tc_threshold=threshold),
                allow_tensor_cores=allow_tensor_cores,
                tc_threshold=threshold,
                storage_itemsize=storage_itemsize,
            )
            self._spmv_bindings[key] = binding
        else:
            self.hits += 1
            obs_metrics.inc(
                obs_names.OPERATOR_CACHE_REQUESTS, entry="spmv_binding",
                result="hit",
            )
        return binding

    def spmm_binding(
        self,
        precision,
        width: int,
        *,
        allow_tensor_cores: bool = True,
        tc_threshold=None,
        storage_itemsize: int | None = None,
    ):
        """Memoised :func:`repro.kernels.spmv.bind_spmm`.

        The batched twin of :meth:`spmv_binding`, additionally keyed by
        the RHS-panel *width*: the binding's reused gather/contribution
        buffers are shaped ``(width, ...)``, so each width gets its own
        resolved closure.  Batch tapes recorded against the same
        hierarchy at the same width share it.
        """
        from repro.formats.bitmap import TC_NNZ_THRESHOLD
        from repro.kernels.spmv import bind_spmm

        threshold = TC_NNZ_THRESHOLD if tc_threshold is None else tc_threshold
        key = (precision, int(width), bool(allow_tensor_cores),
               float(threshold), storage_itemsize)
        binding = self._spmm_bindings.get(key)
        if binding is None:
            self.misses += 1
            obs_metrics.inc(
                obs_names.OPERATOR_CACHE_REQUESTS, entry="spmm_binding",
                result="miss",
            )
            obs_blackbox.record(
                "operator_cache_miss", entry="spmm_binding",
                precision=precision.name.lower(),
            )
            binding = bind_spmm(
                self._mat,
                int(width),
                precision,
                self.spmv_plan(allow_tensor_cores, tc_threshold=threshold),
                allow_tensor_cores=allow_tensor_cores,
                tc_threshold=threshold,
                storage_itemsize=storage_itemsize,
            )
            self._spmm_bindings[key] = binding
        else:
            self.hits += 1
            obs_metrics.inc(
                obs_names.OPERATOR_CACHE_REQUESTS, entry="spmm_binding",
                result="hit",
            )
        return binding
