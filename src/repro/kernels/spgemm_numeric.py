"""SpGEMM step 3: hybrid numeric phase (Alg. 4, Fig. 4).

A warp owns one block-row of C and walks the tiles of A in that row.  The
bitmap popcount of each A-tile selects the execution mode:

* ``popcount >= 10`` — **tensor-core mode** (warp level).  The A-tile is
  replicated into both 4-row halves of ``fragA`` (8x4); pairs of *valid*
  B-tiles (bitmap product nonzero) are packed side by side into ``fragB``
  (4x8); one ``mma.m8n8k4`` computes both tile products at once, the top
  half of the 8x8 accumulator holds ``[tileA@tileB1 | tileA@tileB2]`` and is
  extracted with shuffles.  A trailing unpaired B-tile still costs a full
  MMA issue (half the fragment is wasted) — the cost model reflects that.
* ``popcount < 10`` — **CUDA-core mode** (thread level).  One thread
  multiplies the tile pair scalar-by-scalar, walking the bitmap bits.

Both modes locate the output tile by binary-searching the B-tile's column in
the block-row segment of ``BlcIdxC`` (``np.searchsorted`` over the row-keyed
index here), OR the bitmap product into ``BlcMapC`` and accumulate values
into ``BlcValC``.

The numeric results of the two modes are identical in exact arithmetic; in
low precision the tensor-core mode accumulates FP16 products in FP32,
which :func:`repro.gpu.mma.mma_884` reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.formats.bitmap import TC_NNZ_THRESHOLD, bitmap_scalar_mul_flops
from repro.formats.mbsr import MBSRMatrix
from repro.gpu.counters import KernelCounters, Precision
from repro.kernels.spgemm_symbolic import SymbolicResult
from repro.util.segops import segment_bitwise_or, segment_sum

__all__ = ["NumericResult", "locate_output_tiles", "numeric_spgemm"]


@dataclass
class NumericResult:
    """Values and bitmaps of C plus the work accounting."""

    blc_val_c: np.ndarray
    blc_map_c: np.ndarray
    counters: KernelCounters
    #: Pairs handled by each mode, for path-selection diagnostics.
    tc_pairs: int
    cuda_pairs: int


def locate_output_tiles(
    symbolic: SymbolicResult, cols: np.ndarray, nb: int
) -> np.ndarray:
    """Binary-search each pair's output tile position within BlcIdxC.

    ``BlcIdxC`` is sorted within every block-row, so the (row, col) pair of
    a product maps to a globally sorted key ``row * nb + col``; a single
    ``searchsorted`` reproduces the per-row binary search of Alg. 4 line 11.

    The result depends only on the operands' sparsity patterns, so callers
    that replay a product (plan reuse) fetch it from
    :meth:`~repro.kernels.spgemm_symbolic.SymbolicResult.locate_pairs`,
    which memoises this function per plan.
    """
    row_of_tile = np.repeat(
        np.arange(symbolic.blc_ptr_c.shape[0] - 1, dtype=np.int64),
        np.diff(symbolic.blc_ptr_c),
    )
    keys_c = row_of_tile * nb + symbolic.blc_idx_c
    keys_pair = symbolic.pair_row * nb + cols
    pos = np.searchsorted(keys_c, keys_pair)
    if pos.size and (
        pos.max(initial=0) >= keys_c.shape[0] or np.any(keys_c[pos] != keys_pair)
    ):
        raise AssertionError("numeric pair targets a tile missing from symbolic C")
    return pos


def numeric_spgemm(
    mat_a: MBSRMatrix,
    mat_b: MBSRMatrix,
    symbolic: SymbolicResult,
    precision: Precision = Precision.FP64,
    tc_threshold: int = TC_NNZ_THRESHOLD,
    storage_itemsize: int | None = None,
) -> NumericResult:
    """Compute ``BlcValC`` / ``BlcMapC`` for the structure found symbolically."""
    counters = KernelCounters()
    blc_num_c = symbolic.blc_num_c
    acc_dtype = precision.accum_dtype
    in_dtype = precision.np_dtype

    pair_a, pair_b = symbolic.pair_a, symbolic.pair_b
    if pair_a.shape[0] == 0:
        counters.launches = 1
        return NumericResult(
            np.zeros((blc_num_c, 4, 4), dtype=acc_dtype),
            np.zeros(blc_num_c, dtype=np.uint16),
            counters,
            0,
            0,
        )

    _, pos = symbolic.locate_pairs(mat_b)

    # Mode selection by the A-tile popcount (Alg. 4 line 3); the per-tile
    # popcounts are cached on the operand and reused across products.
    pop_a = mat_a.pop_per_tile[pair_a]
    tc_mask = pop_a >= tc_threshold

    # --- numeric work, both modes ------------------------------------
    # The value math is the same tile product either way; precision
    # semantics follow the chosen mode's hardware (TC: low-precision
    # multiply, FP32+ accumulate; CUDA: scalar ops at input precision with
    # the same accumulate dtype).  The operand tiles come quantised and
    # widened from the per-operator caches (one cast per matrix), and the
    # batched 4x4 products run through matmul so no contraction path is
    # re-searched per call.
    tiles_a = mat_a.cache.tiles(in_dtype, acc_dtype)[pair_a]
    tiles_b = mat_b.cache.tiles(in_dtype, acc_dtype)[pair_b]
    prod = np.matmul(tiles_a, tiles_b)
    # The pair lists are grouped by output block-row; within a row the
    # output positions interleave, so the segmented reduction sorts (a
    # near-sorted key, cheap) before reducing.
    blc_val_c = segment_sum(prod, pos, blc_num_c)
    blc_map_c = segment_bitwise_or(symbolic.pair_map, pos, blc_num_c)

    # --- cost accounting ----------------------------------------------
    # Tensor-core mode: per A-tile, the valid B-tiles are consumed two per
    # MMA issue; an odd count wastes half an issue.
    from repro.gpu.counters import effective_value_bytes

    itemsize = storage_itemsize or precision.itemsize
    acc_itemsize = max(acc_dtype().itemsize, itemsize)
    tc_pairs = int(tc_mask.sum())
    if tc_pairs:
        valid_per_a = np.bincount(pair_a[tc_mask], minlength=mat_a.blc_num)
        issues = int(np.sum((valid_per_a + 1) // 2))
        counters.add_mma(precision, issues)
        # fragment loads/stores: fragA 8x4, fragB 4x8, result extraction 4x8
        counters.add_bytes(
            read=effective_value_bytes(tc_pairs * (16 + 16) * itemsize, itemsize),
            written=tc_pairs * 16 * acc_itemsize,
        )
    # CUDA-core mode: exact scalar multiply-add count from the bitmaps,
    # charged with the thread-level pipeline overhead (bit tests, index
    # arithmetic, divergence) that the MMA path amortises away.
    cuda_pairs = int((~tc_mask).sum())
    if cuda_pairs:
        from repro.gpu.counters import (
            SCALAR_GATHER_OVERHEAD,
            SCALAR_PIPELINE_OVERHEAD,
        )

        muls = bitmap_scalar_mul_flops(
            mat_a.blc_map[pair_a[~tc_mask]], mat_b.blc_map[pair_b[~tc_mask]]
        )
        counters.add_flops(
            precision, 2.0 * float(muls.sum()) * SCALAR_PIPELINE_OVERHEAD
        )
        # Per-pair value gathers cost ~2x their raw bytes (sector
        # granularity), capped at streaming both whole tiles.
        nz_pair = (
            pop_a[~tc_mask] + mat_b.pop_per_tile[pair_b[~tc_mask]]
        ).astype(np.float64)
        gather_bytes = float(
            np.minimum(nz_pair * SCALAR_GATHER_OVERHEAD, 32.0).sum()
        ) * itemsize
        counters.add_bytes(
            read=effective_value_bytes(gather_bytes, itemsize),
            written=cuda_pairs * 16 * acc_itemsize,
        )
    # Binary search + bitmap OR per pair (integer work).
    n_pairs = pair_a.shape[0]
    counters.add_flops(Precision.FP32, 8.0 * n_pairs)
    counters.launches = 1

    return NumericResult(blc_val_c, blc_map_c, counters, tc_pairs, cuda_pairs)
