"""Setup-phase plan cache: pattern-keyed SpGEMM plans, fused RAP plans and
CSR<->mBSR conversion templates.

The AMG setup phase is pattern-dominated: the analysis + symbolic SpGEMM
phases, the Galerkin chain's intermediate structure and both format
conversions depend only on the operands' *sparsity structure*, never on
the values.  When the same structure recurs — the alpha-Setup scenario the
paper cites (re-running setup after coefficient updates), or cuSPARSE's
``SPGEMM_REUSE`` API — all of it can be replayed.

:class:`SetupPlanCache` memoises that structural work behind pattern
fingerprints (:func:`repro.check.fingerprint.pattern_fingerprint`):

* :meth:`spgemm_plan` — a :class:`~repro.kernels.spgemm.SpGEMMPlan` per
  operand-pattern pair; a hit lets :func:`~repro.kernels.spgemm.mbsr_spgemm`
  skip straight to the numeric phase (one launch instead of four).
* :meth:`rap_plan` / :meth:`rap_numeric` — the fused Galerkin product:
  both symbolic phases of ``R@A`` and ``(RA)@P`` are chained once,
  including the intermediate's structure (derivable from bitmaps alone);
  a replay runs only the two numeric passes and never materialises the
  intermediate in CSR.
* :meth:`csr2mbsr` / :meth:`mbsr2csr` — conversion templates: the tile
  layout (``AmgT_CSR2mBSR`` pass 1) and the bitmap expansion are computed
  once per pattern, replays only move values.

Every replay is bit-identical to the cold path: the fill/gather templates
reproduce the exact scatter order of :mod:`repro.formats.convert`, and the
fused intermediate differs from the cold path's numerically-pruned one
only by exact-zero entries, which add exact-zero terms to the IEEE sums
and are eliminated from the final CSR either way.

Entries are kept per pattern key in LRU order (``max_entries`` per kind)
so long-running solvers with churning hierarchies stay bounded.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.check import runtime as check_runtime
from repro.formats.bitmap import (
    TC_NNZ_THRESHOLD,
    TILE_SLOTS,
    bitmap_popcount,
    bitmap_to_mask,
)
from repro.formats.convert import ConversionStats, _tile_layout, csr_to_mbsr
from repro.formats.csr import CSRMatrix
from repro.formats.mbsr import MBSRMatrix
from repro.gpu.counters import Precision
from repro.kernels.record import KernelRecord
from repro.kernels.spgemm import SpGEMMPlan, mbsr_spgemm_symbolic_plan
from repro.obs import metrics as obs_metrics
from repro.kernels.spgemm_numeric import numeric_spgemm
from repro.util.prefix_sum import counts_to_ptr
from repro.util.segops import segment_bitwise_or

__all__ = ["RAPPlan", "SetupPlanCache"]


@dataclass
class RAPPlan:
    """Captured structure of one fused Galerkin product ``R @ A @ P``.

    Chains the symbolic phases of both SpGEMMs.  The intermediate ``RA``
    is stored structure-only (its bitmap is the OR of the pair bitmap
    products — no numerics involved), so :meth:`SetupPlanCache.rap_numeric`
    can rebuild it from a numeric pass alone and feed it straight into the
    second plan.
    """

    plan_ra: SpGEMMPlan
    plan_rap: SpGEMMPlan
    #: Structure of the intermediate RA (shared across replays).
    ra_shape: tuple[int, int]
    ra_blc_ptr: np.ndarray
    ra_blc_idx: np.ndarray
    ra_blc_map: np.ndarray
    ra_pop_per_tile: np.ndarray
    ra_pattern_key: str
    #: Pattern keys of (R, A, P) the plan was built for.
    keys: tuple[str, str, str]
    #: Whether each stage's SpGEMM plan was newly built (ran its symbolic
    #: phase) when this RAP plan was assembled — False when the stage hit
    #: a plan left by an earlier cold product.  Decides what a
    #: ``charge_plan_build`` replay still owes.
    built_ra_fresh: bool = True
    built_rap_fresh: bool = True

    def matches(self, r: MBSRMatrix, a: MBSRMatrix, p: MBSRMatrix) -> bool:
        """True when the operands carry the plan's sparsity patterns."""
        return self.keys == (
            r.cache.pattern_key,
            a.cache.pattern_key,
            p.cache.pattern_key,
        )


@dataclass
class _FillTemplate:
    """CSR->mBSR layout captured once per CSR pattern (pass 1 of the
    conversion); replays scatter values only."""

    shape: tuple[int, int]
    blc_ptr: np.ndarray
    blc_idx: np.ndarray
    blc_map: np.ndarray
    pop_per_tile: np.ndarray
    #: Source permutation and flat destination slot per CSR entry.
    order: np.ndarray
    slots: np.ndarray
    mbsr_pattern_key: str


@dataclass
class _GatherTemplate:
    """mBSR->CSR expansion captured once per mBSR pattern (bitmap included);
    replays gather values only."""

    shape: tuple[int, int]
    indptr: np.ndarray
    indices: np.ndarray
    #: Flat source position in ``blc_val`` per CSR entry.
    gather: np.ndarray
    csr_pattern_key: str


@dataclass
class CacheStats:
    """Hit/miss counts per cache kind (diagnostics and tests)."""

    hits: dict = field(default_factory=dict)
    misses: dict = field(default_factory=dict)

    def count(self, kind: str, hit: bool) -> None:
        bucket = self.hits if hit else self.misses
        bucket[kind] = bucket.get(kind, 0) + 1
        obs_metrics.inc(
            "repro_setup_cache_requests_total",
            kind=kind,
            result="hit" if hit else "miss",
        )


class SetupPlanCache:
    """Pattern-keyed store of replayable setup-phase structure."""

    def __init__(self, max_entries: int = 128) -> None:
        self.max_entries = int(max_entries)
        self._spgemm: OrderedDict[tuple, SpGEMMPlan] = OrderedDict()
        self._rap: OrderedDict[tuple, RAPPlan] = OrderedDict()
        self._fill: OrderedDict[str, _FillTemplate] = OrderedDict()
        self._gather: OrderedDict[str, _GatherTemplate] = OrderedDict()
        self.stats = CacheStats()
        #: LRU drops across all stores (per-kind detail in ``stats``).
        self.evictions: int = 0

    #: Aggregate reuse counts (per-kind detail lives in ``stats``); the
    #: same hits/misses/evictions surface OperatorCache exposes.
    @property
    def hits(self) -> int:
        return sum(self.stats.hits.values())

    @property
    def misses(self) -> int:
        return sum(self.stats.misses.values())

    def _get(self, store: OrderedDict, key):
        entry = store.get(key)
        if entry is not None:
            store.move_to_end(key)
        return entry

    def _put(self, store: OrderedDict, key, entry) -> None:
        store[key] = entry
        while len(store) > self.max_entries:
            store.popitem(last=False)
            self.evictions += 1
            obs_metrics.inc("repro_setup_cache_evictions_total")

    # -- SpGEMM plans ---------------------------------------------------
    def spgemm_plan(
        self, mat_a: MBSRMatrix, mat_b: MBSRMatrix
    ) -> tuple[SpGEMMPlan, bool]:
        """Plan for ``A @ B`` keyed by the operands' patterns.

        Returns ``(plan, fresh)``: *fresh* is True when the plan was just
        built (the caller charges the analysis + symbolic cost exactly
        once); False means a same-pattern product ran before and the plan
        replays straight into the numeric phase.
        """
        key = (mat_a.cache.pattern_key, mat_b.cache.pattern_key)
        plan = self._get(self._spgemm, key)
        if plan is not None:
            self.stats.count("spgemm", hit=True)
            return plan, False
        plan = mbsr_spgemm_symbolic_plan(mat_a, mat_b)
        self._put(self._spgemm, key, plan)
        self.stats.count("spgemm", hit=False)
        return plan, True

    # -- fused RAP plans ------------------------------------------------
    def rap_plan(
        self, r: MBSRMatrix, a: MBSRMatrix, p: MBSRMatrix
    ) -> tuple[RAPPlan, bool]:
        """Fused Galerkin plan keyed by the (R, A, P) patterns.

        Building one runs both symbolic phases (the ``R@A`` stage may hit
        :meth:`spgemm_plan` entries left by an earlier cold setup) and
        derives the intermediate's structure from bitmaps alone; no value
        arithmetic happens here.
        """
        key = (
            r.cache.pattern_key,
            a.cache.pattern_key,
            p.cache.pattern_key,
        )
        plan = self._get(self._rap, key)
        if plan is not None:
            self.stats.count("rap", hit=True)
            return plan, False

        plan_ra, fresh_ra = self.spgemm_plan(r, a)
        sym = plan_ra.symbolic
        _, pos = sym.locate_pairs(a)
        # The intermediate's bitmap is the OR of the pair bitmap products —
        # exactly what the numeric phase computes, minus the values.
        ra_map = segment_bitwise_or(sym.pair_map, pos, sym.blc_num_c)
        ra_pop = bitmap_popcount(ra_map)
        ra_shape = (r.nrows, a.ncols)
        template = MBSRMatrix(
            ra_shape,
            sym.blc_ptr_c,
            sym.blc_idx_c,
            np.zeros((sym.blc_num_c, 4, 4), dtype=np.float64),
            ra_map,
            _trusted=True,
        )
        template.cache.seed_pop_per_tile(ra_pop)
        plan_rap, fresh_rap = self.spgemm_plan(template, p)

        plan = RAPPlan(
            plan_ra=plan_ra,
            plan_rap=plan_rap,
            ra_shape=ra_shape,
            ra_blc_ptr=sym.blc_ptr_c,
            ra_blc_idx=sym.blc_idx_c,
            ra_blc_map=ra_map,
            ra_pop_per_tile=template.cache.pop_per_tile,
            ra_pattern_key=template.cache.pattern_key,
            keys=key,
            built_ra_fresh=fresh_ra,
            built_rap_fresh=fresh_rap,
        )
        self._put(self._rap, key, plan)
        self.stats.count("rap", hit=False)
        return plan, True

    def rap_numeric(
        self,
        plan: RAPPlan,
        r: MBSRMatrix,
        a: MBSRMatrix,
        p: MBSRMatrix,
        precision: Precision = Precision.FP64,
        out_dtype=None,
        *,
        tc_threshold: int | None = None,
        storage_itemsize: int | None = None,
        charge_plan_build: bool = False,
    ) -> tuple[MBSRMatrix, list[KernelRecord]]:
        """Replay *plan* numerically: two numeric passes, no symbolic work.

        Returns the RAP product in mBSR and the two ``spgemm`` records
        (numeric-phase cost only, mirroring ``mbsr_spgemm``'s plan-reuse
        accounting) for the perf layer to price.  With
        ``charge_plan_build=True`` each record additionally carries its
        stage's analysis + symbolic cost — the honest accounting when the
        plan was built by this very call chain (a cold fused product).
        """
        if not plan.matches(r, a, p):
            raise ValueError(
                "RAP plan was built for operands with a different pattern"
            )
        threshold = TC_NNZ_THRESHOLD if tc_threshold is None else tc_threshold
        ra, rec_ra = self._replay_stage(
            plan.plan_ra, r, a, precision, out_dtype, threshold,
            storage_itemsize, stage="ra",
            charge_symbolic=charge_plan_build and plan.built_ra_fresh,
        )
        # Adopt the precomputed intermediate structure so the second pass
        # skips popcounts and pattern hashing too.
        ra.cache.seed_pop_per_tile(plan.ra_pop_per_tile)
        ra.cache.seed_pattern_key(plan.ra_pattern_key)
        rap, rec_rap = self._replay_stage(
            plan.plan_rap, ra, p, precision, out_dtype, threshold,
            storage_itemsize, stage="rap",
            charge_symbolic=charge_plan_build and plan.built_rap_fresh,
        )
        return rap, [rec_ra, rec_rap]

    def _replay_stage(
        self, plan, mat_a, mat_b, precision, out_dtype, threshold,
        storage_itemsize, stage, charge_symbolic=False,
    ):
        """One numeric pass over a captured symbolic result."""
        record = KernelRecord(kernel="spgemm", backend="amgt", precision=precision)
        numeric = numeric_spgemm(
            mat_a, mat_b, plan.symbolic, precision,
            tc_threshold=threshold, storage_itemsize=storage_itemsize,
        )
        if charge_symbolic:
            record.counters.merge(plan.symbolic.counters)
            # Analysis pass, as charged by a cold mbsr_spgemm call.
            record.counters.launches += 1
            record.counters.add_bytes(
                # lint: disable=R3 -- index traffic only (see mbsr_spgemm)
                read=mat_a.blc_num * 16 + mat_a.mb * 8 + mat_b.mb * 8
            )
        record.counters.merge(numeric.counters)
        record.detail = {
            "bins": {
                b: int(rows.shape[0])
                for b, rows in enumerate(plan.analysis.rows_by_bin)
            },
            "intermediate_tiles": plan.analysis.total_intermediate,
            "tc_pairs": numeric.tc_pairs,
            "cuda_pairs": numeric.cuda_pairs,
            "blc_num_c": plan.symbolic.blc_num_c,
            "symbolic_reused": not charge_symbolic,
            "fused_rap": stage,
        }
        val = numeric.blc_val_c
        if out_dtype is not None:
            val = val.astype(out_dtype)
        mask = bitmap_to_mask(numeric.blc_map_c)
        val = np.where(mask, val, val.dtype.type(0))
        out = MBSRMatrix(
            (mat_a.nrows, mat_b.ncols),
            plan.symbolic.blc_ptr_c,
            plan.symbolic.blc_idx_c,
            val,
            numeric.blc_map_c,
            _trusted=True,
        )
        if check_runtime.is_active():
            from repro.check import oracle

            oracle.verify_spgemm(mat_a, mat_b, out, precision, out_dtype)
        return out, record

    # -- conversion templates -------------------------------------------
    def csr2mbsr(self, csr: CSRMatrix) -> tuple[MBSRMatrix, ConversionStats]:
        """``AmgT_CSR2mBSR`` with the tile layout memoised per pattern.

        A miss runs the full conversion (and is charged as such); a hit
        scatters the values through the captured layout — bit-identical to
        the cold conversion (every (tile, slot) destination is unique, so
        the segmented sum degenerates to this scatter) — and returns
        reduced stats covering only the value traffic.
        """
        key = csr.pattern_key()
        tmpl = self._get(self._fill, key)
        itemsize = csr.data.dtype.itemsize
        if tmpl is not None:
            self.stats.count("csr2mbsr", hit=True)
            blc_num = tmpl.blc_map.shape[0]
            flat = np.zeros(blc_num * TILE_SLOTS, dtype=csr.data.dtype)
            flat[tmpl.slots] = csr.data[tmpl.order]
            out = MBSRMatrix(
                tmpl.shape,
                tmpl.blc_ptr,
                tmpl.blc_idx,
                flat.reshape(blc_num, 4, 4),
                tmpl.blc_map,
                _trusted=True,
            )
            out.cache.seed_pop_per_tile(tmpl.pop_per_tile)
            out.cache.seed_pattern_key(tmpl.mbsr_pattern_key)
            stats = ConversionStats(
                kind="csr2mbsr",
                nnz=csr.nnz,
                blc_num=blc_num,
                # value gather through the template's permutation
                bytes_read=csr.nnz * (itemsize + 8),
                # tile values only; ptr/idx/map are reused
                bytes_written=blc_num * TILE_SLOTS * itemsize,
            )
            return out, stats

        self.stats.count("csr2mbsr", hit=False)
        out, stats = csr_to_mbsr(csr, return_stats=True)
        order, slot, tile_of_entry, _, _ = _tile_layout(csr)
        tmpl = _FillTemplate(
            shape=csr.shape,
            blc_ptr=out.blc_ptr,
            blc_idx=out.blc_idx,
            blc_map=out.blc_map,
            pop_per_tile=out.cache.pop_per_tile,
            order=order,
            slots=tile_of_entry * TILE_SLOTS + slot[order],
            mbsr_pattern_key=out.cache.pattern_key,
        )
        self._put(self._fill, key, tmpl)
        return out, stats

    def mbsr2csr(self, mbsr: MBSRMatrix) -> CSRMatrix:
        """``MBSR2CSR`` with the bitmap expansion memoised per pattern.

        The template key includes the bitmap (it decides which slots
        expand), so a hit gathers values straight into the captured CSR
        index arrays — bit-identical to
        :func:`repro.formats.convert.mbsr_to_csr`.
        """
        key = mbsr.cache.pattern_key
        tmpl = self._get(self._gather, key)
        if tmpl is not None:
            self.stats.count("mbsr2csr", hit=True)
            data = mbsr.blc_val.reshape(-1)[tmpl.gather]
            out = CSRMatrix(
                tmpl.shape, tmpl.indptr, tmpl.indices, data, _canonical=True
            )
            out._pattern_key = tmpl.csr_pattern_key
            return out

        self.stats.count("mbsr2csr", hit=False)
        mask = bitmap_to_mask(mbsr.blc_map)
        tile_ids, rr, cc = np.nonzero(mask)
        brow = mbsr.block_row_ids()[tile_ids]
        bcol = mbsr.blc_idx[tile_ids]
        rows = brow * 4 + rr
        cols = bcol * 4 + cc
        flat_src = tile_ids * TILE_SLOTS + rr * 4 + cc
        keep = (rows < mbsr.nrows) & (cols < mbsr.ncols)
        rows, cols, flat_src = rows[keep], cols[keep], flat_src[keep]
        # Same canonical ordering CSRMatrix.from_coo applies.
        order = np.lexsort((cols, rows))
        rows, cols, flat_src = rows[order], cols[order], flat_src[order]
        indptr = counts_to_ptr(np.bincount(rows, minlength=mbsr.nrows))
        out = CSRMatrix(mbsr.shape, indptr, cols,
                        mbsr.blc_val.reshape(-1)[flat_src], _canonical=True)
        tmpl = _GatherTemplate(
            shape=mbsr.shape,
            indptr=out.indptr,
            indices=out.indices,
            gather=flat_src,
            csr_pattern_key=out.pattern_key(),
        )
        self._put(self._gather, key, tmpl)
        return out
