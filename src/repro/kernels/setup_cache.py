"""Setup-phase plan cache: pattern-keyed SpGEMM plans, fused RAP plans and
CSR<->mBSR conversion templates.

The AMG setup phase is pattern-dominated: the analysis + symbolic SpGEMM
phases, the Galerkin chain's intermediate structure and both format
conversions depend only on the operands' *sparsity structure*, never on
the values.  When the same structure recurs — the alpha-Setup scenario the
paper cites (re-running setup after coefficient updates), or cuSPARSE's
``SPGEMM_REUSE`` API — all of it can be replayed.

:class:`SetupPlanCache` memoises that structural work behind pattern
fingerprints (:func:`repro.check.fingerprint.pattern_fingerprint`):

* :meth:`spgemm_plan` — a :class:`~repro.kernels.spgemm.SpGEMMPlan` per
  operand-pattern pair; a hit lets :func:`~repro.kernels.spgemm.mbsr_spgemm`
  skip straight to the numeric phase (one launch instead of four).
* :meth:`rap_plan` / :meth:`rap_numeric` — the fused Galerkin product:
  both symbolic phases of ``R@A`` and ``(RA)@P`` are chained once,
  including the intermediate's structure (derivable from bitmaps alone);
  a replay runs only the two numeric passes and never materialises the
  intermediate in CSR.
* :meth:`csr2mbsr` / :meth:`mbsr2csr` — conversion templates: the tile
  layout (``AmgT_CSR2mBSR`` pass 1) and the bitmap expansion are computed
  once per pattern, replays only move values.

Every replay is bit-identical to the cold path: the fill/gather templates
reproduce the exact scatter order of :mod:`repro.formats.convert`, and the
fused intermediate differs from the cold path's numerically-pruned one
only by exact-zero entries, which add exact-zero terms to the IEEE sums
and are eliminated from the final CSR either way.

Entries are kept per pattern key in LRU order (``max_entries`` per kind)
so long-running solvers with churning hierarchies stay bounded.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.check import runtime as check_runtime
from repro.formats.bitmap import (
    BLOCK_SIZE,
    TC_NNZ_THRESHOLD,
    TILE_SLOTS,
    bitmap_popcount,
    bitmap_to_mask,
)
from repro.formats.convert import ConversionStats, _tile_layout, csr_to_mbsr
from repro.formats.csr import CSRMatrix
from repro.formats.mbsr import MBSRMatrix
from repro.gpu.counters import KernelCounters, Precision
from repro.kernels.record import KernelRecord
from repro.kernels.spgemm import SpGEMMPlan, mbsr_spgemm_symbolic_plan
from repro.obs import metrics as obs_metrics
from repro.obs import names as obs_names
from repro.kernels.spgemm_analysis import analyse_and_bin
from repro.kernels.spgemm_numeric import numeric_spgemm
from repro.kernels.spgemm_symbolic import SymbolicResult, symbolic_spgemm
from repro.util.prefix_sum import counts_to_ptr
from repro.util.segops import segment_bitwise_or

__all__ = ["RAPPlan", "SetupPlanCache", "splice_segments"]


def splice_segments(
    old_ptr: np.ndarray, dirty_rows: np.ndarray, dirty_counts: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Merge geometry for per-row segment splices.

    ``old_ptr`` delimits per-row segments of some entry array (tiles of a
    block-row, candidate pairs of a block-row, CSR entries of a scalar
    row); ``dirty_rows`` (sorted) are the rows being replaced by segments
    of ``dirty_counts[i]`` entries each.  Returns

    a :class:`SpliceGeometry` whose ``old_src`` / ``old_dst`` copy every
    clean row's segment (``out[old_dst] = old_entries[old_src]``) and
    whose ``dirty_dst`` lays the replacement segments (concatenated in
    ``dirty_rows`` order) into place.  Entry order within every segment is
    preserved — the property that keeps a spliced plan bit-identical to
    the cold one.
    """
    old_ptr = np.asarray(old_ptr, dtype=np.int64)
    dirty_rows = np.asarray(dirty_rows, dtype=np.int64)
    dirty_counts = np.asarray(dirty_counts, dtype=np.int64)
    nrows = old_ptr.shape[0] - 1
    counts = np.diff(old_ptr)
    new_counts = counts.copy()
    new_counts[dirty_rows] = dirty_counts
    new_ptr = counts_to_ptr(new_counts)
    dirty_mask = np.zeros(nrows, dtype=bool)
    dirty_mask[dirty_rows] = True
    row_of_old = np.repeat(np.arange(nrows, dtype=np.int64), counts)
    old_src = np.flatnonzero(~dirty_mask[row_of_old])
    rows_kept = row_of_old[old_src]
    old_dst = new_ptr[rows_kept] + (old_src - old_ptr[rows_kept])
    total_dirty = int(dirty_counts.sum())
    row_of_dirty = np.repeat(dirty_rows, dirty_counts)
    dptr = counts_to_ptr(dirty_counts)
    dwithin = np.arange(total_dirty, dtype=np.int64) - np.repeat(
        dptr[:-1], dirty_counts
    )
    dirty_dst = new_ptr[row_of_dirty] + dwithin
    return SpliceGeometry(new_ptr, old_src, old_dst, dirty_dst, rows_kept)


@dataclass
class SpliceGeometry:
    """Index plumbing of one per-row segment splice (see
    :func:`splice_segments`)."""

    new_ptr: np.ndarray
    old_src: np.ndarray
    old_dst: np.ndarray
    dirty_dst: np.ndarray
    #: Row owning each kept old entry (aligned with ``old_src``).
    rows_kept: np.ndarray

    def splice(self, old_arr, dirty_arr, old_shift=None):
        """Merge one per-entry array; ``old_shift`` (per kept entry) is
        added to the copied old values — the tile/entry-index remap of
        clean rows whose flat positions moved."""
        shape = (int(self.new_ptr[-1]),) + old_arr.shape[1:]
        out = np.zeros(shape, dtype=old_arr.dtype)
        vals = old_arr[self.old_src]
        if old_shift is not None:
            vals = vals + old_shift
        out[self.old_dst] = vals
        out[self.dirty_dst] = dirty_arr
        return out


@dataclass
class RAPPlan:
    """Captured structure of one fused Galerkin product ``R @ A @ P``.

    Chains the symbolic phases of both SpGEMMs.  The intermediate ``RA``
    is stored structure-only (its bitmap is the OR of the pair bitmap
    products — no numerics involved), so :meth:`SetupPlanCache.rap_numeric`
    can rebuild it from a numeric pass alone and feed it straight into the
    second plan.
    """

    plan_ra: SpGEMMPlan
    plan_rap: SpGEMMPlan
    #: Structure of the intermediate RA (shared across replays).
    ra_shape: tuple[int, int]
    ra_blc_ptr: np.ndarray
    ra_blc_idx: np.ndarray
    ra_blc_map: np.ndarray
    ra_pop_per_tile: np.ndarray
    ra_pattern_key: str
    #: Pattern keys of (R, A, P) the plan was built for.
    keys: tuple[str, str, str]
    #: Whether each stage's SpGEMM plan was newly built (ran its symbolic
    #: phase) when this RAP plan was assembled — False when the stage hit
    #: a plan left by an earlier cold product.  Decides what a
    #: ``charge_plan_build`` replay still owes.
    built_ra_fresh: bool = True
    built_rap_fresh: bool = True

    def matches(self, r: MBSRMatrix, a: MBSRMatrix, p: MBSRMatrix) -> bool:
        """True when the operands carry the plan's sparsity patterns."""
        return self.keys == (
            r.cache.pattern_key,
            a.cache.pattern_key,
            p.cache.pattern_key,
        )


@dataclass
class _FillTemplate:
    """CSR->mBSR layout captured once per CSR pattern (pass 1 of the
    conversion); replays scatter values only."""

    shape: tuple[int, int]
    blc_ptr: np.ndarray
    blc_idx: np.ndarray
    blc_map: np.ndarray
    pop_per_tile: np.ndarray
    #: Source permutation and flat destination slot per CSR entry.
    order: np.ndarray
    slots: np.ndarray
    mbsr_pattern_key: str | None
    #: CSR entry offset at each block-row boundary (``indptr[min(4b, n)]``),
    #: the segment pointer the template splice shifts clean rows by.
    row_starts: np.ndarray | None = None


@dataclass
class _GatherTemplate:
    """mBSR->CSR expansion captured once per mBSR pattern (bitmap included);
    replays gather values only."""

    shape: tuple[int, int]
    indptr: np.ndarray
    indices: np.ndarray
    #: Flat source position in ``blc_val`` per CSR entry.
    gather: np.ndarray
    csr_pattern_key: str


def _segment_slice(ptr: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Flat indices of all entries in the given per-row segments."""
    counts = ptr[rows + 1] - ptr[rows]
    total = int(counts.sum())
    starts = counts_to_ptr(counts)[:-1]
    return (
        np.repeat(ptr[rows], counts)
        + np.arange(total, dtype=np.int64)
        - np.repeat(starts, counts)
    )


def _restrict_symbolic(
    sym: SymbolicResult,
    rows: np.ndarray,
    mat_b: MBSRMatrix,
    compact_a_ptr: np.ndarray | None = None,
) -> SymbolicResult:
    """Row-slice a full symbolic result into the compact form the numeric
    phase consumes: pairs of the selected block-rows only, output tile
    positions rebased to the compacted C, pair order untouched.

    ``compact_a_ptr`` additionally rebases ``pair_a`` from the full A tile
    space to the same row-compacted layout — used when the left operand
    itself is materialised only on the dirty rows (the RA intermediate).
    """
    rows = np.asarray(rows, dtype=np.int64)
    mb = sym.blc_ptr_c.shape[0] - 1
    mask = np.zeros(mb, dtype=bool)
    mask[rows] = True
    sel = np.flatnonzero(mask[sym.pair_row])
    pair_row_sel = sym.pair_row[sel]
    row_pos = np.searchsorted(rows, pair_row_sel)
    counts = np.diff(sym.blc_ptr_c)[rows]
    cptr = counts_to_ptr(counts)
    cols_all, pos_all = sym.locate_pairs(mat_b)
    pos = pos_all[sel] - sym.blc_ptr_c[pair_row_sel] + cptr[row_pos]
    pair_a = sym.pair_a[sel]
    if compact_a_ptr is not None:
        a_counts = np.diff(compact_a_ptr)[rows]
        a_cptr = counts_to_ptr(a_counts)
        pair_a = pair_a - compact_a_ptr[pair_row_sel] + a_cptr[row_pos]
    tile_sel = _segment_slice(sym.blc_ptr_c, rows)
    return SymbolicResult(
        blc_ptr_c=cptr,
        blc_idx_c=sym.blc_idx_c[tile_sel],
        pair_a=pair_a,
        pair_b=sym.pair_b[sel],
        pair_map=sym.pair_map[sel],
        pair_row=row_pos,
        counters=KernelCounters(),
        _pair_cols=cols_all[sel],
        _pair_pos=pos,
    )


def _verify_spliced_plan(plan: SpGEMMPlan, a_new, b_new) -> None:
    """REPRO_CHECK gate: a spliced plan must be bytewise the cold build."""
    from repro.check.violation import ContractViolation

    cold = mbsr_spgemm_symbolic_plan(a_new, b_new)
    pairs = (
        ("blc_ptr_c", plan.symbolic.blc_ptr_c, cold.symbolic.blc_ptr_c),
        ("blc_idx_c", plan.symbolic.blc_idx_c, cold.symbolic.blc_idx_c),
        ("pair_a", plan.symbolic.pair_a, cold.symbolic.pair_a),
        ("pair_b", plan.symbolic.pair_b, cold.symbolic.pair_b),
        ("pair_map", plan.symbolic.pair_map, cold.symbolic.pair_map),
        ("pair_row", plan.symbolic.pair_row, cold.symbolic.pair_row),
        ("pair_pos", plan.symbolic._pair_pos, cold.symbolic._pair_pos),
        ("pair_cols", plan.symbolic._pair_cols, cold.symbolic._pair_cols),
    )
    for name, got, want in pairs:
        if not np.array_equal(got, want):
            raise ContractViolation(
                "setup_cache", "setup/plan-splice",
                f"spliced SpGEMM plan diverges from the cold build in "
                f"{name}: {got.shape} vs {want.shape}",
            )


@dataclass
class CacheStats:
    """Hit/miss counts per cache kind (diagnostics and tests)."""

    hits: dict = field(default_factory=dict)
    misses: dict = field(default_factory=dict)

    def count(self, kind: str, hit: bool) -> None:
        bucket = self.hits if hit else self.misses
        bucket[kind] = bucket.get(kind, 0) + 1
        obs_metrics.inc(
            obs_names.SETUP_CACHE_REQUESTS,
            kind=kind,
            result="hit" if hit else "miss",
        )


class SetupPlanCache:
    """Pattern-keyed store of replayable setup-phase structure."""

    def __init__(self, max_entries: int = 128) -> None:
        self.max_entries = int(max_entries)
        self._spgemm: OrderedDict[tuple, SpGEMMPlan] = OrderedDict()
        self._rap: OrderedDict[tuple, RAPPlan] = OrderedDict()
        self._fill: OrderedDict[str, _FillTemplate] = OrderedDict()
        self._gather: OrderedDict[str, _GatherTemplate] = OrderedDict()
        self.stats = CacheStats()
        #: LRU drops across all stores (per-kind detail in ``stats``).
        self.evictions: int = 0

    #: Aggregate reuse counts (per-kind detail lives in ``stats``); the
    #: same hits/misses/evictions surface OperatorCache exposes.
    @property
    def hits(self) -> int:
        return sum(self.stats.hits.values())

    @property
    def misses(self) -> int:
        return sum(self.stats.misses.values())

    def _get(self, store: OrderedDict, key):
        entry = store.get(key)
        if entry is not None:
            store.move_to_end(key)
        return entry

    def _put(self, store: OrderedDict, key, entry) -> None:
        store[key] = entry
        while len(store) > self.max_entries:
            store.popitem(last=False)
            self.evictions += 1
            obs_metrics.inc(obs_names.SETUP_CACHE_EVICTIONS)
            from repro.obs import blackbox as obs_blackbox

            obs_blackbox.record(
                "setup_cache_eviction", entries=len(store),
                max_entries=self.max_entries,
            )

    # -- SpGEMM plans ---------------------------------------------------
    def spgemm_plan(
        self, mat_a: MBSRMatrix, mat_b: MBSRMatrix
    ) -> tuple[SpGEMMPlan, bool]:
        """Plan for ``A @ B`` keyed by the operands' patterns.

        Returns ``(plan, fresh)``: *fresh* is True when the plan was just
        built (the caller charges the analysis + symbolic cost exactly
        once); False means a same-pattern product ran before and the plan
        replays straight into the numeric phase.
        """
        key = (mat_a.cache.pattern_key, mat_b.cache.pattern_key)
        plan = self._get(self._spgemm, key)
        if plan is not None:
            self.stats.count("spgemm", hit=True)
            return plan, False
        plan = mbsr_spgemm_symbolic_plan(mat_a, mat_b)
        self._put(self._spgemm, key, plan)
        self.stats.count("spgemm", hit=False)
        return plan, True

    # -- fused RAP plans ------------------------------------------------
    def rap_plan(
        self, r: MBSRMatrix, a: MBSRMatrix, p: MBSRMatrix
    ) -> tuple[RAPPlan, bool]:
        """Fused Galerkin plan keyed by the (R, A, P) patterns.

        Building one runs both symbolic phases (the ``R@A`` stage may hit
        :meth:`spgemm_plan` entries left by an earlier cold setup) and
        derives the intermediate's structure from bitmaps alone; no value
        arithmetic happens here.
        """
        key = (
            r.cache.pattern_key,
            a.cache.pattern_key,
            p.cache.pattern_key,
        )
        plan = self._get(self._rap, key)
        if plan is not None:
            self.stats.count("rap", hit=True)
            return plan, False

        plan_ra, fresh_ra = self.spgemm_plan(r, a)
        sym = plan_ra.symbolic
        _, pos = sym.locate_pairs(a)
        # The intermediate's bitmap is the OR of the pair bitmap products —
        # exactly what the numeric phase computes, minus the values.
        ra_map = segment_bitwise_or(sym.pair_map, pos, sym.blc_num_c)
        ra_pop = bitmap_popcount(ra_map)
        ra_shape = (r.nrows, a.ncols)
        template = MBSRMatrix(
            ra_shape,
            sym.blc_ptr_c,
            sym.blc_idx_c,
            np.zeros((sym.blc_num_c, 4, 4), dtype=np.float64),
            ra_map,
            _trusted=True,
        )
        template.cache.seed_pop_per_tile(ra_pop)
        plan_rap, fresh_rap = self.spgemm_plan(template, p)

        plan = RAPPlan(
            plan_ra=plan_ra,
            plan_rap=plan_rap,
            ra_shape=ra_shape,
            ra_blc_ptr=sym.blc_ptr_c,
            ra_blc_idx=sym.blc_idx_c,
            ra_blc_map=ra_map,
            ra_pop_per_tile=template.cache.pop_per_tile,
            ra_pattern_key=template.cache.pattern_key,
            keys=key,
            built_ra_fresh=fresh_ra,
            built_rap_fresh=fresh_rap,
        )
        self._put(self._rap, key, plan)
        self.stats.count("rap", hit=False)
        return plan, True

    def rap_plan_if_cached(
        self, r: MBSRMatrix, a: MBSRMatrix, p: MBSRMatrix
    ) -> RAPPlan | None:
        """Peek: the cached fused plan for the operands' patterns, or None.

        Unlike :meth:`rap_plan` a miss builds nothing — the incremental
        patcher uses this to decide between splicing a previous plan and
        paying a cold build.
        """
        key = (
            r.cache.pattern_key,
            a.cache.pattern_key,
            p.cache.pattern_key,
        )
        return self._get(self._rap, key)

    def rap_numeric(
        self,
        plan: RAPPlan,
        r: MBSRMatrix,
        a: MBSRMatrix,
        p: MBSRMatrix,
        precision: Precision = Precision.FP64,
        out_dtype=None,
        *,
        tc_threshold: int | None = None,
        storage_itemsize: int | None = None,
        charge_plan_build: bool = False,
    ) -> tuple[MBSRMatrix, list[KernelRecord]]:
        """Replay *plan* numerically: two numeric passes, no symbolic work.

        Returns the RAP product in mBSR and the two ``spgemm`` records
        (numeric-phase cost only, mirroring ``mbsr_spgemm``'s plan-reuse
        accounting) for the perf layer to price.  With
        ``charge_plan_build=True`` each record additionally carries its
        stage's analysis + symbolic cost — the honest accounting when the
        plan was built by this very call chain (a cold fused product).
        """
        if not plan.matches(r, a, p):
            raise ValueError(
                "RAP plan was built for operands with a different pattern"
            )
        threshold = TC_NNZ_THRESHOLD if tc_threshold is None else tc_threshold
        ra, rec_ra = self._replay_stage(
            plan.plan_ra, r, a, precision, out_dtype, threshold,
            storage_itemsize, stage="ra",
            charge_symbolic=charge_plan_build and plan.built_ra_fresh,
        )
        # Adopt the precomputed intermediate structure so the second pass
        # skips popcounts and pattern hashing too.
        ra.cache.seed_pop_per_tile(plan.ra_pop_per_tile)
        ra.cache.seed_pattern_key(plan.ra_pattern_key)
        rap, rec_rap = self._replay_stage(
            plan.plan_rap, ra, p, precision, out_dtype, threshold,
            storage_itemsize, stage="rap",
            charge_symbolic=charge_plan_build and plan.built_rap_fresh,
        )
        return rap, [rec_ra, rec_rap]

    def _replay_stage(
        self, plan, mat_a, mat_b, precision, out_dtype, threshold,
        storage_itemsize, stage, charge_symbolic=False,
    ):
        """One numeric pass over a captured symbolic result."""
        record = KernelRecord(kernel="spgemm", backend="amgt", precision=precision)
        numeric = numeric_spgemm(
            mat_a, mat_b, plan.symbolic, precision,
            tc_threshold=threshold, storage_itemsize=storage_itemsize,
        )
        if charge_symbolic:
            record.counters.merge(plan.symbolic.counters)
            # Analysis pass, as charged by a cold mbsr_spgemm call.
            record.counters.launches += 1
            record.counters.add_bytes(
                # lint: disable=R3 -- index traffic only (see mbsr_spgemm)
                read=mat_a.blc_num * 16 + mat_a.mb * 8 + mat_b.mb * 8
            )
        record.counters.merge(numeric.counters)
        record.detail = {
            "bins": {
                b: int(rows.shape[0])
                for b, rows in enumerate(plan.analysis.rows_by_bin)
            },
            "intermediate_tiles": plan.analysis.total_intermediate,
            "tc_pairs": numeric.tc_pairs,
            "cuda_pairs": numeric.cuda_pairs,
            "blc_num_c": plan.symbolic.blc_num_c,
            "symbolic_reused": not charge_symbolic,
            "fused_rap": stage,
        }
        val = numeric.blc_val_c
        if out_dtype is not None:
            val = val.astype(out_dtype)
        mask = bitmap_to_mask(numeric.blc_map_c)
        val = np.where(mask, val, val.dtype.type(0))
        out = MBSRMatrix(
            (mat_a.nrows, mat_b.ncols),
            plan.symbolic.blc_ptr_c,
            plan.symbolic.blc_idx_c,
            val,
            numeric.blc_map_c,
            _trusted=True,
        )
        if check_runtime.is_active():
            from repro.check import oracle

            oracle.verify_spgemm(mat_a, mat_b, out, precision, out_dtype)
        return out, record

    # -- conversion templates -------------------------------------------
    def csr2mbsr(self, csr: CSRMatrix) -> tuple[MBSRMatrix, ConversionStats]:
        """``AmgT_CSR2mBSR`` with the tile layout memoised per pattern.

        A miss runs the full conversion (and is charged as such); a hit
        scatters the values through the captured layout — bit-identical to
        the cold conversion (every (tile, slot) destination is unique, so
        the segmented sum degenerates to this scatter) — and returns
        reduced stats covering only the value traffic.
        """
        key = csr.pattern_key()
        tmpl = self._get(self._fill, key)
        itemsize = csr.data.dtype.itemsize
        if tmpl is not None:
            self.stats.count("csr2mbsr", hit=True)
            blc_num = tmpl.blc_map.shape[0]
            flat = np.zeros(blc_num * TILE_SLOTS, dtype=csr.data.dtype)
            flat[tmpl.slots] = csr.data[tmpl.order]
            out = MBSRMatrix(
                tmpl.shape,
                tmpl.blc_ptr,
                tmpl.blc_idx,
                flat.reshape(blc_num, 4, 4),
                tmpl.blc_map,
                _trusted=True,
            )
            out.cache.seed_pop_per_tile(tmpl.pop_per_tile)
            out.cache.seed_pattern_key(tmpl.mbsr_pattern_key)
            stats = ConversionStats(
                kind="csr2mbsr",
                nnz=csr.nnz,
                blc_num=blc_num,
                # value gather through the template's permutation
                bytes_read=csr.nnz * (itemsize + 8),
                # tile values only; ptr/idx/map are reused
                bytes_written=blc_num * TILE_SLOTS * itemsize,
            )
            return out, stats

        self.stats.count("csr2mbsr", hit=False)
        out, stats = csr_to_mbsr(csr, return_stats=True)
        order, slot, tile_of_entry, _, _ = _tile_layout(csr)
        mb = out.blc_ptr.shape[0] - 1
        bounds = np.minimum(np.arange(mb + 1, dtype=np.int64) * 4, csr.nrows)
        tmpl = _FillTemplate(
            shape=csr.shape,
            blc_ptr=out.blc_ptr,
            blc_idx=out.blc_idx,
            blc_map=out.blc_map,
            pop_per_tile=out.cache.pop_per_tile,
            order=order,
            slots=tile_of_entry * TILE_SLOTS + slot[order],
            mbsr_pattern_key=out.cache.pattern_key,
            row_starts=csr.indptr[bounds],
        )
        self._put(self._fill, key, tmpl)
        return out, stats

    def mbsr2csr(self, mbsr: MBSRMatrix) -> CSRMatrix:
        """``MBSR2CSR`` with the bitmap expansion memoised per pattern.

        The template key includes the bitmap (it decides which slots
        expand), so a hit gathers values straight into the captured CSR
        index arrays — bit-identical to
        :func:`repro.formats.convert.mbsr_to_csr`.
        """
        key = mbsr.cache.pattern_key
        tmpl = self._get(self._gather, key)
        if tmpl is not None:
            self.stats.count("mbsr2csr", hit=True)
            data = mbsr.blc_val.reshape(-1)[tmpl.gather]
            out = CSRMatrix(
                tmpl.shape, tmpl.indptr, tmpl.indices, data, _canonical=True
            )
            out._pattern_key = tmpl.csr_pattern_key
            return out

        self.stats.count("mbsr2csr", hit=False)
        mask = bitmap_to_mask(mbsr.blc_map)
        tile_ids, rr, cc = np.nonzero(mask)
        brow = mbsr.block_row_ids()[tile_ids]
        bcol = mbsr.blc_idx[tile_ids]
        rows = brow * 4 + rr
        cols = bcol * 4 + cc
        flat_src = tile_ids * TILE_SLOTS + rr * 4 + cc
        keep = (rows < mbsr.nrows) & (cols < mbsr.ncols)
        rows, cols, flat_src = rows[keep], cols[keep], flat_src[keep]
        # Same canonical ordering CSRMatrix.from_coo applies.
        order = np.lexsort((cols, rows))
        rows, cols, flat_src = rows[order], cols[order], flat_src[order]
        indptr = counts_to_ptr(np.bincount(rows, minlength=mbsr.nrows))
        out = CSRMatrix(mbsr.shape, indptr, cols,
                        mbsr.blc_val.reshape(-1)[flat_src], _canonical=True)
        tmpl = _GatherTemplate(
            shape=mbsr.shape,
            indptr=out.indptr,
            indices=out.indices,
            gather=flat_src,
            csr_pattern_key=out.pattern_key(),
        )
        self._put(self._gather, key, tmpl)
        return out

    # -- incremental patches (dirty-block-row splices) -------------------
    #
    # An evolving operator changes its pattern in a few block-rows; the
    # methods below graft row-restricted symbolic results into cached
    # plans/templates instead of rebuilding them.  Every splice preserves
    # per-row entry order, so the spliced plan is bytewise the plan a cold
    # build on the new operands would produce (verified against the cold
    # build under REPRO_CHECK).  Spliced entries are stored in the same
    # LRU stores under the new pattern keys — the next exact-pattern
    # re-setup replays them numeric-only like any cold-built plan.

    def patch_spgemm_plan(
        self,
        a_new: MBSRMatrix,
        b_new: MBSRMatrix,
        a_old: MBSRMatrix,
        b_old: MBSRMatrix,
        prev: SpGEMMPlan,
        dirty_rows: np.ndarray,
    ) -> SpGEMMPlan:
        """Splice *prev* into a plan for the drifted operands.

        ``dirty_rows`` (sorted block-rows of A) must cover every block-row
        of the product whose pair list could differ: rows where A's
        pattern changed plus rows whose A entries reach a changed B
        block-row.  Clean rows reuse the cached pair lists with their tile
        indices shifted to the new operands' layouts; dirty rows run the
        row-ranged symbolic phase.  The result is stored under the new
        pattern keys and returned.
        """
        key = (a_new.cache.pattern_key, b_new.cache.pattern_key)
        hit = self._get(self._spgemm, key)
        if hit is not None:
            self.stats.count("spgemm", hit=True)
            return hit
        dirty_rows = np.asarray(dirty_rows, dtype=np.int64)
        mb = a_new.mb
        sym_old = prev.symbolic
        sub = symbolic_spgemm(a_new, b_new, None, dirty_rows)
        sub.locate_pairs(b_new)
        cols_old, pos_old = sym_old.locate_pairs(b_old)

        # Pair-list splice.  Kept pairs shift their A/B tile indices by the
        # per-block-row tile-count deltas of the drifted operands.
        old_pair_ptr = counts_to_ptr(
            np.bincount(sym_old.pair_row, minlength=mb)
        )
        sub_counts = np.bincount(
            sub.pair_row, minlength=dirty_rows.shape[0]
        )
        geom_p = splice_segments(old_pair_ptr, dirty_rows, sub_counts)
        shift_a = a_new.blc_ptr[:-1] - a_old.blc_ptr[:-1]
        shift_b = b_new.blc_ptr[:-1] - b_old.blc_ptr[:-1]
        pair_a = geom_p.splice(
            sym_old.pair_a, sub.pair_a, shift_a[geom_p.rows_kept]
        )
        b_rows_kept = b_old.block_row_ids()[sym_old.pair_b[geom_p.old_src]]
        pair_b = geom_p.splice(
            sym_old.pair_b, sub.pair_b, shift_b[b_rows_kept]
        )
        pair_map = geom_p.splice(sym_old.pair_map, sub.pair_map)
        pair_row = np.repeat(
            np.arange(mb, dtype=np.int64), np.diff(geom_p.new_ptr)
        )

        # Output-structure splice (tile segments of C).
        geom_t = splice_segments(
            sym_old.blc_ptr_c, dirty_rows, np.diff(sub.blc_ptr_c)
        )
        blc_idx_c = geom_t.splice(sym_old.blc_idx_c, sub.blc_idx_c)
        # Numeric-phase geometry: output tile positions shift with C's
        # layout; the dirty rows' compact positions are rebased.
        c_shift = geom_t.new_ptr[:-1] - sym_old.blc_ptr_c[:-1]
        sub_cols, sub_pos = sub.locate_pairs(b_new)
        sub_pos_global = (
            geom_t.new_ptr[dirty_rows[sub.pair_row]]
            + sub_pos
            - sub.blc_ptr_c[sub.pair_row]
        )
        pos = geom_p.splice(pos_old, sub_pos_global, c_shift[geom_p.rows_kept])
        cols = geom_p.splice(cols_old, sub_cols)
        for arr in (pair_a, pair_b, pair_map, pair_row, pos, cols):
            arr.setflags(write=False)

        symbolic = SymbolicResult(
            blc_ptr_c=geom_t.new_ptr,
            blc_idx_c=blc_idx_c,
            pair_a=pair_a,
            pair_b=pair_b,
            pair_map=pair_map,
            pair_row=pair_row,
            counters=sub.counters,
            _pair_cols=cols,
            _pair_pos=pos,
        )
        plan = SpGEMMPlan(
            analysis=analyse_and_bin(a_new, b_new),
            symbolic=symbolic,
            shape_a=a_new.shape,
            shape_b=b_new.shape,
            blc_num_a=a_new.blc_num,
            blc_num_b=b_new.blc_num,
            pattern_key_a=key[0],
            pattern_key_b=key[1],
        )
        if check_runtime.is_active():
            _verify_spliced_plan(plan, a_new, b_new)
        self._put(self._spgemm, key, plan)
        self.stats.count("spgemm_splice", hit=True)
        return plan

    def patch_rap_plan(
        self,
        r: MBSRMatrix,
        a: MBSRMatrix,
        p: MBSRMatrix,
        r_old: MBSRMatrix,
        a_old: MBSRMatrix,
        p_old: MBSRMatrix,
        prev: RAPPlan,
        dirty_rows: np.ndarray,
    ) -> tuple[RAPPlan, bool]:
        """Splice a fused Galerkin plan for locally drifted operands.

        ``dirty_rows`` are coarse block-rows (rows of R).  Both stage
        plans are spliced via :meth:`patch_spgemm_plan` and the
        intermediate RA structure is patched in place: clean rows keep
        their cached bitmaps, dirty rows re-derive them from the fresh
        pair lists.  Returns ``(plan, fresh)`` like :meth:`rap_plan`.
        """
        key = (
            r.cache.pattern_key,
            a.cache.pattern_key,
            p.cache.pattern_key,
        )
        hit = self._get(self._rap, key)
        if hit is not None:
            self.stats.count("rap", hit=True)
            return hit, False
        dirty_rows = np.asarray(dirty_rows, dtype=np.int64)
        plan_ra = self.patch_spgemm_plan(
            r, a, r_old, a_old, prev.plan_ra, dirty_rows
        )
        sym = plan_ra.symbolic

        # RA structure splice: dirty rows OR their fresh pair bitmaps.
        geom = splice_segments(
            prev.ra_blc_ptr, dirty_rows, np.diff(sym.blc_ptr_c)[dirty_rows]
        )
        dmask = np.zeros(r.mb, dtype=bool)
        dmask[dirty_rows] = True
        sel = dmask[sym.pair_row]
        dptr = counts_to_ptr(np.diff(sym.blc_ptr_c)[dirty_rows])
        row_pos = np.searchsorted(dirty_rows, sym.pair_row[sel])
        _, pos_all = sym.locate_pairs(a)
        pos_compact = (
            pos_all[sel]
            - sym.blc_ptr_c[sym.pair_row[sel]]
            + dptr[row_pos]
        )
        dirty_map = segment_bitwise_or(
            sym.pair_map[sel], pos_compact, int(dptr[-1])
        )
        ra_map = geom.splice(prev.ra_blc_map, dirty_map)
        ra_pop = geom.splice(prev.ra_pop_per_tile, bitmap_popcount(dirty_map))
        ra_shape = (r.nrows, a.ncols)
        template = MBSRMatrix(
            ra_shape,
            sym.blc_ptr_c,
            sym.blc_idx_c,
            np.zeros((sym.blc_num_c, 4, 4), dtype=np.float64),
            ra_map,
            _trusted=True,
        )
        template.cache.seed_pop_per_tile(ra_pop)
        template_old = MBSRMatrix(
            prev.ra_shape,
            prev.ra_blc_ptr,
            prev.ra_blc_idx,
            np.zeros((prev.ra_blc_map.shape[0], 4, 4), dtype=np.float64),
            prev.ra_blc_map,
            _trusted=True,
        )
        template_old.cache.seed_pop_per_tile(prev.ra_pop_per_tile)
        template_old.cache.seed_pattern_key(prev.ra_pattern_key)
        plan_rap = self.patch_spgemm_plan(
            template, p, template_old, p_old, prev.plan_rap, dirty_rows
        )

        plan = RAPPlan(
            plan_ra=plan_ra,
            plan_rap=plan_rap,
            ra_shape=ra_shape,
            ra_blc_ptr=sym.blc_ptr_c,
            ra_blc_idx=sym.blc_idx_c,
            ra_blc_map=ra_map,
            ra_pop_per_tile=ra_pop,
            ra_pattern_key=template.cache.pattern_key,
            keys=key,
            built_ra_fresh=False,
            built_rap_fresh=False,
        )
        self._put(self._rap, key, plan)
        self.stats.count("rap_splice", hit=True)
        return plan, True

    def rap_numeric_rows(
        self,
        plan: RAPPlan,
        r: MBSRMatrix,
        a: MBSRMatrix,
        p: MBSRMatrix,
        rows: np.ndarray,
        precision: Precision = Precision.FP64,
        out_dtype=None,
        *,
        tc_threshold: int | None = None,
        storage_itemsize: int | None = None,
    ) -> tuple[MBSRMatrix, list[KernelRecord]]:
        """Dirty-row numeric replay of a (spliced) fused Galerkin plan.

        Runs both numeric passes restricted to the given coarse
        block-rows and returns the compacted sub-product (block-row ``i``
        is block-row ``rows[i]`` of the full RAP) — each tile bytewise
        equal to the full replay's, because the pair subsets keep their
        per-row order.  The RAP row ``j`` only reads RA row ``j``, so the
        intermediate is only materialised on the dirty rows too.
        """
        if not plan.matches(r, a, p):
            raise ValueError(
                "RAP plan was built for operands with a different pattern"
            )
        rows = np.asarray(rows, dtype=np.int64)
        threshold = TC_NNZ_THRESHOLD if tc_threshold is None else tc_threshold
        sym1 = _restrict_symbolic(plan.plan_ra.symbolic, rows, a)
        ra_sub, rec_ra = self._numeric_only(
            r, a, sym1, precision, None, threshold, storage_itemsize,
            stage="ra", nrows=4 * rows.shape[0], ncols=a.ncols,
            patched_rows=rows.shape[0],
        )
        # Adopt the plan's intermediate structure on the row subset.
        tile_sel = _segment_slice(plan.ra_blc_ptr, rows)
        ra_sub.cache.seed_pop_per_tile(plan.ra_pop_per_tile[tile_sel])
        sym2 = _restrict_symbolic(
            plan.plan_rap.symbolic, rows, p, compact_a_ptr=plan.ra_blc_ptr
        )
        rap_sub, rec_rap = self._numeric_only(
            ra_sub, p, sym2, precision, out_dtype, threshold,
            storage_itemsize, stage="rap", nrows=4 * rows.shape[0],
            ncols=p.ncols, patched_rows=rows.shape[0],
        )
        if check_runtime.is_active():
            from repro.check.violation import ContractViolation

            # Differential oracle: the restricted replay must be a
            # bytewise slice of the full fused replay on the same rows.
            full, _ = self.rap_numeric(
                plan, r, a, p, precision, out_dtype,
                tc_threshold=tc_threshold,
                storage_itemsize=storage_itemsize,
            )
            sel = _segment_slice(full.blc_ptr, rows)
            if not (
                np.array_equal(np.diff(rap_sub.blc_ptr),
                               full.blc_ptr[rows + 1] - full.blc_ptr[rows])
                and np.array_equal(rap_sub.blc_idx, full.blc_idx[sel])
                and np.array_equal(rap_sub.blc_map, full.blc_map[sel])
                and np.array_equal(rap_sub.blc_val, full.blc_val[sel])
            ):
                raise ContractViolation(
                    "setup_cache", "setup/rap-rows-slice",
                    f"restricted RAP replay diverges from the full fused "
                    f"replay on {rows.shape[0]} block-rows",
                )
        return rap_sub, [rec_ra, rec_rap]

    def _numeric_only(
        self, mat_a, mat_b, symbolic, precision, out_dtype, threshold,
        storage_itemsize, stage, nrows, ncols, patched_rows,
    ):
        """One restricted numeric pass over a row-sliced symbolic result."""
        record = KernelRecord(kernel="spgemm", backend="amgt",
                              precision=precision)
        numeric = numeric_spgemm(
            mat_a, mat_b, symbolic, precision,
            tc_threshold=threshold, storage_itemsize=storage_itemsize,
        )
        record.counters.merge(numeric.counters)
        record.detail = {
            "tc_pairs": numeric.tc_pairs,
            "cuda_pairs": numeric.cuda_pairs,
            "blc_num_c": symbolic.blc_num_c,
            "symbolic_reused": True,
            "fused_rap": stage,
            "patched_rows": int(patched_rows),
        }
        val = numeric.blc_val_c
        if out_dtype is not None:
            val = val.astype(out_dtype)
        mask = bitmap_to_mask(numeric.blc_map_c)
        val = np.where(mask, val, val.dtype.type(0))
        out = MBSRMatrix(
            (nrows, ncols),
            symbolic.blc_ptr_c,
            symbolic.blc_idx_c,
            val,
            numeric.blc_map_c,
            _trusted=True,
        )
        return out, record

    def patch_csr2mbsr(
        self,
        csr_new: CSRMatrix,
        prev_key: str,
        dirty_block_rows: np.ndarray,
    ) -> tuple[MBSRMatrix, ConversionStats, bool]:
        """``AmgT_CSR2mBSR`` through a spliced tile-layout template.

        Splices the fill template cached under ``prev_key`` (the pattern
        key of the pre-drift CSR): clean block-rows keep their captured
        entry permutation and slot targets with shifted offsets, dirty
        block-rows re-run the layout pass on just their scalar rows.  The
        spliced template is stored under the new pattern key and the
        values are scattered through it — bit-identical to a cold
        conversion.  Falls back to :meth:`csr2mbsr` (and reports
        ``patched=False``) when no usable template is cached.  Returns
        ``(matrix, stats, patched)``.
        """
        tmpl_old = self._get(self._fill, prev_key)
        if (
            tmpl_old is None
            or tmpl_old.shape != csr_new.shape
            or tmpl_old.row_starts is None
        ):
            out, stats = self.csr2mbsr(csr_new)
            self.stats.count("csr2mbsr_splice", hit=False)
            return out, stats, False
        key = csr_new.pattern_key()
        if self._get(self._fill, key) is None:
            dirty_block_rows = np.asarray(dirty_block_rows, dtype=np.int64)
            nrows = csr_new.nrows
            mb = tmpl_old.blc_ptr.shape[0] - 1
            bounds = np.minimum(
                np.arange(mb + 1, dtype=np.int64) * 4, nrows
            )
            new_row_starts = csr_new.indptr[bounds]

            # Dirty-row layout on the extracted scalar rows (block-aligned:
            # every dirty block-row contributes its full row group).
            scalar_rows = (
                (dirty_block_rows[:, None] * BLOCK_SIZE
                 + np.arange(BLOCK_SIZE, dtype=np.int64)[None, :]).reshape(-1)
            )
            scalar_rows = scalar_rows[scalar_rows < nrows]
            sub_csr = csr_new.extract_rows(scalar_rows)
            sub_mbsr = csr_to_mbsr(sub_csr)
            order_s, slot_s, tile_of_entry_s, _, _ = _tile_layout(sub_csr)
            # Map sub entry/tile ids to global positions.
            sub_counts = np.diff(sub_csr.indptr)
            sub2glob = (
                np.repeat(csr_new.indptr[scalar_rows], sub_counts)
                + np.arange(sub_csr.nnz, dtype=np.int64)
                - np.repeat(sub_csr.indptr[:-1], sub_counts)
            )
            geom_t = splice_segments(
                tmpl_old.blc_ptr, dirty_block_rows, np.diff(sub_mbsr.blc_ptr)
            )
            sub_tile_row = sub_mbsr.block_row_ids()
            tile2glob = (
                geom_t.new_ptr[dirty_block_rows[sub_tile_row]]
                + np.arange(sub_mbsr.blc_num, dtype=np.int64)
                - sub_mbsr.blc_ptr[sub_tile_row]
            )
            geom_e = splice_segments(
                tmpl_old.row_starts,
                dirty_block_rows,
                np.diff(new_row_starts)[dirty_block_rows],
            )
            entry_shift = (new_row_starts[:-1] - tmpl_old.row_starts[:-1])
            order = geom_e.splice(
                tmpl_old.order, sub2glob[order_s],
                entry_shift[geom_e.rows_kept],
            )
            tile_shift = geom_t.new_ptr[:-1] - tmpl_old.blc_ptr[:-1]
            slots = geom_e.splice(
                tmpl_old.slots,
                tile2glob[tile_of_entry_s] * TILE_SLOTS + slot_s[order_s],
                TILE_SLOTS * tile_shift[geom_e.rows_kept],
            )
            blc_idx = geom_t.splice(tmpl_old.blc_idx, sub_mbsr.blc_idx)
            blc_map = geom_t.splice(tmpl_old.blc_map, sub_mbsr.blc_map)
            tmpl = _FillTemplate(
                shape=csr_new.shape,
                blc_ptr=geom_t.new_ptr,
                blc_idx=blc_idx,
                blc_map=blc_map,
                pop_per_tile=bitmap_popcount(blc_map),
                order=order,
                slots=slots,
                mbsr_pattern_key=None,
                row_starts=new_row_starts,
            )
            self._put(self._fill, key, tmpl)
        out, stats = self.csr2mbsr(csr_new)
        tmpl = self._get(self._fill, key)
        if tmpl is not None and tmpl.mbsr_pattern_key is None:
            # First scatter through the spliced template: backfill the
            # mBSR key so later hits skip the pattern hash.
            tmpl.mbsr_pattern_key = out.cache.pattern_key
        if check_runtime.is_active():
            from repro.check import oracle

            oracle.verify_conversion(csr_new, out)
        self.stats.count("csr2mbsr_splice", hit=True)
        return out, stats, True
