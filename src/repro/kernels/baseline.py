"""Vendor-style CSR kernels — the HYPRE baseline of the evaluation.

HYPRE's GPU backend calls cuSPARSE (NVIDIA) or rocSPARSE (AMD) for its
device SpGEMM and SpMV.  Both vendor SpGEMMs are hash/merge-based row-wise
CSR algorithms on the scalar cores, and both SpMVs are row-parallel CSR
kernels; neither touches the tensor cores for these sparse operations,
which is the performance gap AmgT exploits.

This module implements the same algorithmic class:

* :func:`csr_spgemm` — row-wise expansion with per-row accumulation (the
  classic Gustavson formulation used by the vendor hash kernels), counted
  as scalar flops plus the CSR traffic of reading both operands and writing
  C twice (symbolic + numeric passes, as the vendor two-phase APIs do).
* :func:`csr_spmv` — row-parallel CSR SpMV with a warp-per-row model; its
  imbalance factor is the raw row-length skew (no load-balancing pass).

The records carry ``backend='cusparse'`` or ``'rocsparse'`` so the cost
model applies the matching sustained-efficiency constants.
"""

from __future__ import annotations

import numpy as np

from repro.check import runtime as check_runtime
from repro.formats.csr import CSRMatrix
from repro.gpu.counters import Precision
from repro.kernels.record import KernelRecord
from repro.util.hashing import distinct_count_per_segment, distinct_sorted_per_segment
from repro.util.prefix_sum import counts_to_ptr
from repro.util.segops import segment_sum

__all__ = ["csr_spgemm", "csr_spmv", "bind_csr_spmv", "csr_spmm",
           "bind_csr_spmm"]


def _expand_pairs(a: CSRMatrix, b: CSRMatrix):
    """All (entryA, entryB) products of the Gustavson row-wise traversal."""
    col_a = a.indices
    b_counts = np.diff(b.indptr)
    per_entry = b_counts[col_a]
    pair_a = np.repeat(np.arange(a.nnz, dtype=np.int64), per_entry)
    total = int(per_entry.sum())
    starts = counts_to_ptr(per_entry)[:-1]
    within = np.arange(total, dtype=np.int64) - np.repeat(starts, per_entry)
    pair_b = b.indptr[col_a][pair_a] + within
    pair_row = a.row_ids()[pair_a]
    return pair_a, pair_b, pair_row


def csr_spgemm(
    a: CSRMatrix,
    b: CSRMatrix,
    precision: Precision = Precision.FP64,
    backend: str = "cusparse",
) -> tuple[CSRMatrix, KernelRecord]:
    """C = A @ B with a vendor-style two-phase hash CSR SpGEMM."""
    if a.ncols != b.nrows:
        raise ValueError(f"inner dimensions differ: A is {a.shape}, B is {b.shape}")
    record = KernelRecord(kernel="spgemm", backend=backend, precision=precision)
    counters = record.counters

    pair_a, pair_b, pair_row = _expand_pairs(a, b)
    cols = b.indices[pair_b]
    seg_counts = np.bincount(pair_row, minlength=a.nrows)
    seg_ptr = counts_to_ptr(seg_counts)

    # Symbolic pass: distinct columns per row (hash counting).
    row_nnz = distinct_count_per_segment(cols, seg_ptr)
    indptr_c = counts_to_ptr(row_nnz)
    indices_c, _ = distinct_sorted_per_segment(cols, seg_ptr)

    # Numeric pass: accumulate products into the located slots.
    acc_dtype = precision.accum_dtype
    in_dtype = precision.np_dtype
    row_of_out = np.repeat(np.arange(a.nrows, dtype=np.int64), row_nnz)
    keys_c = row_of_out * b.ncols + indices_c
    keys_pair = pair_row * b.ncols + cols
    pos = np.searchsorted(keys_c, keys_pair)
    prods = a.data[pair_a].astype(in_dtype).astype(acc_dtype) * b.data[pair_b].astype(
        in_dtype
    ).astype(acc_dtype)
    vals = segment_sum(prods, pos, indices_c.shape[0])

    n_products = pair_a.shape[0]
    counters.add_flops(precision, 2.0 * n_products)
    itemsize = precision.itemsize
    counters.add_bytes(
        # read A and B entries per product (value + column index), plus
        # the hash-table traffic of both passes
        read=n_products * 2 * (itemsize + 4) * 2,
        written=indices_c.shape[0] * (itemsize + 4) * 2 + (a.nrows + 1) * 8,
    )
    counters.launches = 3  # analysis/symbolic/numeric, as in the vendor API
    record.detail = {"intermediate_products": int(n_products), "nnz_c": int(indices_c.shape[0])}

    out = CSRMatrix(
        (a.nrows, b.ncols), indptr_c, indices_c, vals, _canonical=True
    )
    if check_runtime.is_active():
        from repro.check import oracle

        oracle.verify_csr_spgemm(a, b, out, precision)
    return out, record


def csr_spmv(
    a: CSRMatrix,
    x: np.ndarray,
    precision: Precision = Precision.FP64,
    backend: str = "cusparse",
) -> tuple[np.ndarray, KernelRecord]:
    """y = A @ x with a vendor-style row-parallel CSR SpMV."""
    x = np.asarray(x)
    if x.shape != (a.ncols,):
        raise ValueError(f"x has shape {x.shape}, expected ({a.ncols},)")
    record = KernelRecord(kernel="spmv", backend=backend, precision=precision)
    counters = record.counters
    in_dtype = precision.np_dtype
    acc_dtype = precision.accum_dtype

    data = a.data.astype(in_dtype).astype(acc_dtype)
    xv = x.astype(in_dtype).astype(acc_dtype)
    products = data * xv[a.indices]
    y = np.bincount(a.row_ids(), weights=products.astype(np.float64), minlength=a.nrows)
    y = y.astype(acc_dtype)

    _account_csr_spmv(record, a, precision)
    if check_runtime.is_active():
        from repro.check import oracle

        oracle.verify_csr_spmv(a, x, y, precision)
    return y, record


def _account_csr_spmv(record: KernelRecord, a: CSRMatrix, precision: Precision) -> None:
    """Fill *record* with the cost of one CSR SpMV on *a* (x-independent)."""
    counters = record.counters
    acc_dtype = precision.accum_dtype
    counters.add_flops(precision, 2.0 * a.nnz)
    counters.add_bytes(
        read=a.nnz * (precision.itemsize + 4) + (a.nrows + 1) * 8
        + a.nnz * precision.itemsize,  # x gather, uncoalesced
        written=a.nrows * acc_dtype().itemsize,
    )
    # Row-parallel vendor kernel: imbalance = row-length skew.
    row_nnz = a.row_nnz().astype(np.float64)
    mean = row_nnz.mean() if a.nrows else 0.0
    counters.imbalance = float(row_nnz.max() / mean) if mean > 0 else 1.0
    # Vendor kernels bound the skew penalty with internal row splitting.
    counters.imbalance = min(counters.imbalance, 4.0)
    counters.launches = 1


def bind_csr_spmv(a: CSRMatrix, precision: Precision = Precision.FP64,
                  backend: str = "cusparse"):
    """Resolve one CSR SpMV into a replayable binding (the tape's baseline
    path).  The per-call ``data.astype(in).astype(acc)`` double cast and
    the COO row-id expansion are captured once; ``run(x)`` is then the
    product + bincount core of :func:`csr_spmv`, bit-identical to it
    followed by ``np.asarray(y, dtype=np.float64)``.
    """
    from repro.kernels.spmv import SpMVBinding

    record = KernelRecord(kernel="spmv", backend=backend, precision=precision)
    _account_csr_spmv(record, a, precision)
    in_dtype = np.dtype(precision.np_dtype)
    acc_dtype = np.dtype(precision.accum_dtype)
    data = a.data.astype(in_dtype).astype(acc_dtype)
    row_ids = a.row_ids()
    indices = a.indices
    nrows = a.nrows
    f64_acc = acc_dtype == np.float64
    # Check gate resolved at bind time, like the dispatch itself: under
    # an active checked region (or REPRO_CHECK) every run verifies
    # against the differential oracle, otherwise replay is check-free.
    checked = check_runtime.is_active()

    def run_acc(x: np.ndarray) -> np.ndarray:
        """The replay core; returns y in the accumulator dtype."""
        xv = x if x.dtype == in_dtype else x.astype(in_dtype)
        if xv.dtype != acc_dtype:
            xv = xv.astype(acc_dtype)
        products = data * xv[indices]
        if not f64_acc:
            products = products.astype(np.float64)
        y = np.bincount(row_ids, weights=products, minlength=nrows)
        if not f64_acc:
            # Match csr_spmv's round-to-accumulator before the float64
            # widening the backend applies.
            y = y.astype(acc_dtype)
        return y

    if checked:
        def run(x: np.ndarray) -> np.ndarray:
            from repro.check import oracle

            y = run_acc(x)
            oracle.verify_csr_spmv(a, x, y, precision)
            return y if f64_acc else y.astype(np.float64)
    elif f64_acc:
        run = run_acc
    else:
        def run(x: np.ndarray) -> np.ndarray:
            return run_acc(x).astype(np.float64)

    return SpMVBinding(run, record, precision, plan=None,
                       nrows=nrows, ncols=a.ncols)


def _account_csr_spmm(
    record: KernelRecord, a: CSRMatrix, precision: Precision, width: int
) -> None:
    """Fill *record* with the cost of one width-*width* CSR SpMM on *a*.

    The vendor-SpMM analogue of :func:`_account_csr_spmv`: matrix values,
    column indices and row pointers are read once per panel; flops, the
    x-panel gather and the y-panel write scale with *width*.
    """
    counters = record.counters
    acc_dtype = precision.accum_dtype
    counters.add_flops(precision, 2.0 * a.nnz * width)
    counters.add_bytes(
        read=a.nnz * (precision.itemsize + 4) + (a.nrows + 1) * 8
        + a.nnz * precision.itemsize * width,  # x gather per column
        written=a.nrows * acc_dtype().itemsize * width,
    )
    row_nnz = a.row_nnz().astype(np.float64)
    mean = row_nnz.mean() if a.nrows else 0.0
    counters.imbalance = float(row_nnz.max() / mean) if mean > 0 else 1.0
    counters.imbalance = min(counters.imbalance, 4.0)
    counters.launches = 1
    record.detail = {"width": width}


def bind_csr_spmm(a: CSRMatrix, width: int,
                  precision: Precision = Precision.FP64,
                  backend: str = "cusparse"):
    """Resolve one CSR SpMM into a replayable blocked binding.

    The batched twin of :func:`bind_csr_spmv`, same row-panel layout as
    :class:`repro.kernels.spmv.SpMMBinding`: ``run(X)`` takes a
    ``(width, ncols)`` panel (row j is RHS j) and returns a fresh float64
    ``(width, nrows)`` panel, row j bit-identical to the width-1 binding
    on ``X[j]``.  The product stage is one broadcast elementwise multiply
    (per-element, hence per-row, identical to the width-1 multiply); the
    reduction is one ``bincount`` per column with the same row ids in
    the same input order.
    """
    from repro.kernels.spmv import SpMMBinding

    if width < 1:
        raise ValueError(f"panel width must be >= 1, got {width}")
    record = KernelRecord(kernel="spmm", backend=backend, precision=precision)
    _account_csr_spmm(record, a, precision, width)
    in_dtype = np.dtype(precision.np_dtype)
    acc_dtype = np.dtype(precision.accum_dtype)
    data = a.data.astype(in_dtype).astype(acc_dtype)
    row_ids = a.row_ids()
    indices = a.indices
    nrows, ncols = a.nrows, a.ncols
    f64_acc = acc_dtype == np.float64
    checked = check_runtime.is_active()
    # Reused work buffers: the gathered x panel and the per-entry
    # products (single-threaded replay, like the SpMV binding).
    gather_buf = np.empty((width, indices.shape[0]), dtype=acc_dtype)
    prod_buf = np.empty_like(gather_buf)

    def run_acc(x: np.ndarray) -> np.ndarray:
        """The panel replay core; returns (width, nrows) in the
        accumulator dtype, row j bit-identical to the width-1 core."""
        xv = x if x.dtype == in_dtype else x.astype(in_dtype)
        if xv.dtype != acc_dtype:
            xv = xv.astype(acc_dtype)
        np.take(xv, indices, axis=1, out=gather_buf)
        np.multiply(data, gather_buf, out=prod_buf)
        weights = prod_buf if f64_acc else prod_buf.astype(np.float64)
        y = np.empty((width, nrows),
                     dtype=np.float64 if f64_acc else acc_dtype)
        for j in range(width):
            yj = np.bincount(row_ids, weights=weights[j], minlength=nrows)
            y[j] = yj if f64_acc else yj.astype(acc_dtype)
        return y

    if checked:
        def run(x: np.ndarray) -> np.ndarray:
            from repro.check import oracle

            y = run_acc(x)
            for j in range(width):
                oracle.verify_csr_spmv(a, x[j], y[j], precision)
            return y if f64_acc else y.astype(np.float64)
    elif f64_acc:
        run = run_acc
    else:
        def run(x: np.ndarray) -> np.ndarray:
            return run_acc(x).astype(np.float64)

    return SpMMBinding(run, run_acc, record, precision, plan=None,
                       nrows=nrows, ncols=ncols, width=width)


def csr_spmm(
    a: CSRMatrix,
    x: np.ndarray,
    precision: Precision = Precision.FP64,
    backend: str = "cusparse",
) -> tuple[np.ndarray, KernelRecord]:
    """Compute ``Y = A @ X`` for an ``(ncols, k)`` RHS panel.

    The vendor-style blocked SpMM (cuSPARSE ``SpMM`` / rocSPARSE
    ``csrmm``): public column-panel convention — *x* has one right-hand
    side per column, the returned ``Y`` is ``(nrows, k)`` in the
    accumulator dtype, column j bit-identical to
    ``csr_spmv(a, x[:, j], ...)``.  Under an active check region every
    column is differentially verified against the width-1 kernel.
    """
    x = np.asarray(x)
    if x.ndim != 2 or x.shape[0] != a.ncols:
        raise ValueError(
            f"x has shape {x.shape}, expected ({a.ncols}, k) — one "
            f"right-hand side per column"
        )
    width = x.shape[1]
    binding = bind_csr_spmm(a, width, precision, backend)
    record = KernelRecord(kernel="spmm", backend=backend, precision=precision)
    _account_csr_spmm(record, a, precision, width)
    y = np.ascontiguousarray(binding.run_acc(np.ascontiguousarray(x.T)).T)
    if check_runtime.is_active():
        # Differential oracle for the batch path: the column loop itself.
        for j in range(width):
            y1, _ = csr_spmv(a, x[:, j], precision, backend)
            if not np.array_equal(y[:, j], y1, equal_nan=True):
                from repro.check import ContractViolation

                bad = int(np.flatnonzero(y[:, j] != y1)[0])
                raise ContractViolation(
                    "csr_spmm",
                    "spmm/column-differential",
                    f"panel column {j} diverges from the 1-RHS kernel "
                    f"(first mismatch at row {bad}: panel={y[bad, j]!r}, "
                    f"spmv={y1[bad]!r})",
                )
    return y, record
