"""AmgT compute kernels and the vendor-style baselines.

* :mod:`repro.kernels.spgemm` — the mBSR SpGEMM of Sec. IV.C: data
  analysis + binning, two-step hash symbolic phase (Alg. 3), hybrid
  tensor-core / CUDA-core numeric phase (Alg. 4).
* :mod:`repro.kernels.spmv` — the mBSR SpMV of Sec. IV.D: adaptive
  load-balancing and core selection, tensor-core path (Fig. 5) and
  CUDA-core path (Alg. 5).
* :mod:`repro.kernels.baseline` — CSR SpGEMM/SpMV in the style of the
  vendor libraries (cuSPARSE/rocSPARSE) that HYPRE's GPU backend calls;
  these are the Fig. 7 baselines.

Every kernel returns ``(result, KernelRecord)`` where the record carries
the operation counters priced by :class:`repro.gpu.cost.CostModel`.
"""

from repro.kernels.spgemm import (
    SpGEMMPlan,
    mbsr_spgemm,
    mbsr_spgemm_symbolic_plan,
)
from repro.kernels.spmv import mbsr_spmv, SpMVPlan, build_spmv_plan
from repro.kernels.baseline import csr_spgemm, csr_spmv
from repro.kernels.record import KernelRecord

__all__ = [
    "mbsr_spgemm",
    "mbsr_spgemm_symbolic_plan",
    "SpGEMMPlan",
    "mbsr_spmv",
    "SpMVPlan",
    "build_spmv_plan",
    "csr_spgemm",
    "csr_spmv",
    "KernelRecord",
]
